package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"os/exec"
	"runtime"
	"strings"
	"time"
)

// Manifest records how a run was produced, so any table row can be
// reproduced from its artifacts: the tool and its effective configuration,
// the seed and worker count, and the build provenance.
type Manifest struct {
	Tool        string         `json:"tool"`
	Args        []string       `json:"args,omitempty"`
	Config      map[string]any `json:"config,omitempty"`
	Seed        uint64         `json:"seed"`
	Workers     int            `json:"workers"`
	GitDescribe string         `json:"git_describe,omitempty"`
	GoVersion   string         `json:"go_version"`
	CreatedAt   string         `json:"created_at"`
}

// NewManifest builds a manifest for the named tool, capturing the process
// arguments, the Go version, the git description of the working tree
// (best-effort) and the current time.
func NewManifest(tool string, seed uint64, workers int, config map[string]any) Manifest {
	return Manifest{
		Tool:        tool,
		Args:        os.Args[1:],
		Config:      config,
		Seed:        seed,
		Workers:     workers,
		GitDescribe: GitDescribe(),
		GoVersion:   runtime.Version(),
		//lint:allow detcheck the manifest's creation stamp is intentionally wall-clock
		CreatedAt: time.Now().UTC().Format(time.RFC3339),
	}
}

// GitDescribe returns `git describe --always --dirty` for the current
// working directory, or "" when git or a repository is unavailable. The
// lookup is best-effort: a missing repository must not fail a run.
func GitDescribe() string {
	out, err := exec.Command("git", "describe", "--always", "--dirty", "--tags").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}

// WriteManifest writes the manifest as indented JSON.
func WriteManifest(w io.Writer, m Manifest) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m)
}

// Artifacts manages the observability outputs of one command invocation:
// the metrics snapshot, the JSONL event trace, and the run manifest written
// beside the first of them as "<path>.manifest.json". A nil *Artifacts
// (returned when neither path is set) is the disabled fast path; its
// methods are no-ops and Observability() returns nil.
type Artifacts struct {
	obs         *Obs
	metricsPath string
	reg         *Registry
	tracer      *Tracer
	traceFile   *os.File
}

// OpenArtifacts prepares the run's artifact files. Either path may be empty
// to disable that artifact; when both are empty it returns (nil, nil). The
// manifest is written immediately, so even a crashed run leaves provenance.
func OpenArtifacts(metricsPath, tracePath string, m Manifest) (*Artifacts, error) {
	if metricsPath == "" && tracePath == "" {
		return nil, nil
	}
	a := &Artifacts{metricsPath: metricsPath, obs: &Obs{}}
	if metricsPath != "" {
		a.reg = NewRegistry()
		a.obs.Metrics = a.reg
	}
	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			return nil, err
		}
		a.traceFile = f
		a.tracer = NewTracer(f)
		a.obs.Trace = a.tracer
	}
	manifestPath := metricsPath
	if manifestPath == "" {
		manifestPath = tracePath
	}
	mf, err := os.Create(manifestPath + ".manifest.json")
	if err != nil {
		a.abort()
		return nil, err
	}
	werr := WriteManifest(mf, m)
	if cerr := mf.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		a.abort()
		return nil, werr
	}
	return a, nil
}

func (a *Artifacts) abort() {
	if a.traceFile != nil {
		a.traceFile.Close()
	}
}

// Observability returns the Obs bundle to thread through the run, or nil
// when artifacts are disabled.
func (a *Artifacts) Observability() *Obs {
	if a == nil {
		return nil
	}
	return a.obs
}

// Close materialises the metrics snapshot, flushes the trace and closes the
// files, returning the first error encountered. Safe on nil.
func (a *Artifacts) Close() error {
	if a == nil {
		return nil
	}
	var first error
	if a.reg != nil {
		f, err := os.Create(a.metricsPath)
		if err == nil {
			err = a.reg.WriteJSON(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			first = fmt.Errorf("obs: writing metrics: %w", err)
		}
	}
	if a.tracer != nil {
		if err := a.tracer.Flush(); err != nil && first == nil {
			first = fmt.Errorf("obs: flushing trace: %w", err)
		}
		if err := a.traceFile.Close(); err != nil && first == nil {
			first = fmt.Errorf("obs: closing trace: %w", err)
		}
	}
	return first
}
