package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

// TestSyncRegistryConcurrentWriters hammers one registry from many
// goroutines; run under -race this is the data-race proof, and the final
// totals prove no update was lost.
func TestSyncRegistryConcurrentWriters(t *testing.T) {
	s := NewSyncRegistry()
	c := s.Counter("req")
	g := s.Gauge("depth")
	h := s.Histogram("lat", []float64{1, 10, 100})
	const goroutines, per = 8, 1000
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for i := 0; i < goroutines; i++ {
		go func() {
			defer wg.Done()
			for k := 0; k < per; k++ {
				c.Inc()
				g.Set(float64(k))
				h.Observe(float64(k % 200))
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != goroutines*per {
		t.Errorf("counter = %v, want %d", got, goroutines*per)
	}
	if got := h.Count(); got != goroutines*per {
		t.Errorf("histogram count = %v, want %d", got, goroutines*per)
	}
	snap := s.Snapshot()
	if snap.Counters["req"] != goroutines*per {
		t.Errorf("snapshot counter = %v", snap.Counters["req"])
	}
	if hs := snap.Histograms["lat"]; hs.Count != goroutines*per || len(hs.Counts) != 4 {
		t.Errorf("snapshot histogram = %+v", hs)
	}
}

// TestSyncRegistryNilSafe mirrors the Registry contract: every handle and
// method on a nil registry is a usable no-op.
func TestSyncRegistryNilSafe(t *testing.T) {
	var s *SyncRegistry
	c := s.Counter("x")
	g := s.Gauge("x")
	h := s.Histogram("x", []float64{1})
	c.Inc()
	c.Add(3)
	g.Set(7)
	h.Observe(2)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Error("nil handles accumulated state")
	}
	if snap := s.Snapshot(); len(snap.Counters) != 0 {
		t.Errorf("nil snapshot = %+v", snap)
	}
	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(buf.String()) != "{}" {
		t.Errorf("nil WriteJSON = %q, want {}", buf.String())
	}
}

// TestSyncRegistryWriteJSONMatchesRegistry: the sync wrapper must render the
// same JSON a plain Registry with identical contents does, so /metrics
// consumers see one format.
func TestSyncRegistryWriteJSONMatchesRegistry(t *testing.T) {
	s := NewSyncRegistry()
	s.Counter("hits").Add(4)
	s.Gauge("depth").Set(2)
	s.Histogram("lat_ms", []float64{5, 50}).Observe(12)

	r := NewRegistry()
	r.Counter("hits").Add(4)
	r.Gauge("depth").Set(2)
	r.Histogram("lat_ms", []float64{5, 50}).Observe(12)

	var got, want bytes.Buffer
	if err := s.WriteJSON(&got); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteJSON(&want); err != nil {
		t.Fatal(err)
	}
	if got.String() != want.String() {
		t.Errorf("sync JSON:\n%s\nregistry JSON:\n%s", got.String(), want.String())
	}
	var decoded Snapshot
	if err := json.Unmarshal(got.Bytes(), &decoded); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
}

// TestSyncRegistrySameNameSharesInstrument: two handles for one name update
// one underlying instrument, like Registry.
func TestSyncRegistrySameNameSharesInstrument(t *testing.T) {
	s := NewSyncRegistry()
	a := s.Counter("n")
	b := s.Counter("n")
	a.Inc()
	b.Inc()
	if got := a.Value(); got != 2 {
		t.Errorf("shared counter = %v, want 2", got)
	}
}
