package sim

import (
	"errors"
	"math"
	"strings"
	"testing"

	"smartbadge/internal/device"
	"smartbadge/internal/dpm"
	"smartbadge/internal/perfmodel"
	"smartbadge/internal/policy"
	"smartbadge/internal/sa1100"
	"smartbadge/internal/workload"
)

func TestDerateScalesEnergyExactly(t *testing.T) {
	// A derate window covering the whole run scales every draw — continuous
	// dot-product charging and per-event lumps alike — so total energy must be
	// exactly Factor times the baseline.
	base := runMP3(t, 11, false, nil)
	tr := mp3Trace(t, 11, "ACEFBD")
	cfg := Config{
		Badge:      device.SmartBadge(),
		Proc:       sa1100.Default(),
		Trace:      tr,
		Controller: idealController(t, perfmodel.MP3Curve(), 0.15, false),
		Kind:       workload.MP3,
		Derate:     []PowerDerate{{StartS: 0, EndS: tr.Duration * 10, Factor: 1.35}},
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rel := res.EnergyJ / base.EnergyJ; math.Abs(rel-1.35) > 1e-9 {
		t.Errorf("derated energy ratio = %v, want exactly 1.35", rel)
	}
	// Timing is power-independent: the decode schedule must be untouched.
	if res.FramesDecoded != base.FramesDecoded || res.FrameDelay.Mean() != base.FrameDelay.Mean() {
		t.Error("derating changed the schedule, not just the energy")
	}
}

func TestDeratePartialWindow(t *testing.T) {
	base := runMP3(t, 12, false, nil)
	tr := mp3Trace(t, 12, "ACEFBD")
	cfg := Config{
		Badge:      device.SmartBadge(),
		Proc:       sa1100.Default(),
		Trace:      tr,
		Controller: idealController(t, perfmodel.MP3Curve(), 0.15, false),
		Kind:       workload.MP3,
		Derate: []PowerDerate{
			{StartS: tr.Duration * 0.2, EndS: tr.Duration * 0.3, Factor: 1.5},
			{StartS: tr.Duration * 0.6, EndS: tr.Duration * 0.7, Factor: 1.2},
		},
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.EnergyJ <= base.EnergyJ {
		t.Errorf("derated energy %v not above baseline %v", res.EnergyJ, base.EnergyJ)
	}
	// Only ~10% of the run is derated at each factor: the total cannot exceed
	// the whole-run worst case.
	if res.EnergyJ >= base.EnergyJ*1.5 {
		t.Errorf("derated energy %v implausibly high vs baseline %v", res.EnergyJ, base.EnergyJ)
	}
}

func TestDerateValidation(t *testing.T) {
	tr := mp3Trace(t, 1, "A")
	mk := func(windows []PowerDerate) Config {
		return Config{
			Badge:      device.SmartBadge(),
			Proc:       sa1100.Default(),
			Trace:      tr,
			Controller: idealController(t, perfmodel.MP3Curve(), 0.15, false),
			Kind:       workload.MP3,
			Derate:     windows,
		}
	}
	bad := [][]PowerDerate{
		{{StartS: -1, EndS: 5, Factor: 1.2}},
		{{StartS: 5, EndS: 5, Factor: 1.2}},
		{{StartS: 0, EndS: 5, Factor: 0}},
		{{StartS: 0, EndS: 5, Factor: -2}},
		{{StartS: 0, EndS: 5, Factor: 1.2}, {StartS: 4, EndS: 8, Factor: 1.3}},
	}
	for i, w := range bad {
		if _, err := New(mk(w)); err == nil {
			t.Errorf("case %d: invalid derate windows %v accepted", i, w)
		}
	}
	// Out-of-order but disjoint windows are fine (New sorts a copy).
	ok := []PowerDerate{{StartS: 10, EndS: 12, Factor: 1.2}, {StartS: 0, EndS: 5, Factor: 1.3}}
	if _, err := New(mk(ok)); err != nil {
		t.Errorf("disjoint unsorted windows rejected: %v", err)
	}
}

func TestInternalErrorRecoveredFromRun(t *testing.T) {
	// A trace with decreasing arrivals (workload.Trace.Validate would reject
	// it, but sim.New cannot afford a full scan on every construction) drives
	// the event clock backwards mid-run: the typed internal panic must come
	// back as a wrapped error, not crash the process.
	tr := &workload.Trace{
		Frames: []workload.TraceFrame{
			{Seq: 0, Arrival: 5, Work: 0.001, TrueArrivalRate: 10, TrueDecodeRateMax: 40},
			{Seq: 1, Arrival: 1, Work: 0.001, TrueArrivalRate: 10, TrueDecodeRateMax: 40},
		},
		Changes:  []workload.RateChange{{ArrivalRate: 10, DecodeRateMax: 40}},
		Duration: 5,
	}
	res, err := Run(Config{
		Badge:      device.SmartBadge(),
		Proc:       sa1100.Default(),
		Trace:      tr,
		Controller: idealController(t, perfmodel.MP3Curve(), 0.15, false),
		Kind:       workload.MP3,
	})
	if err == nil {
		t.Fatalf("corrupted simulator returned %+v without error", res)
	}
	var ie *InternalError
	if !errors.As(err, &ie) {
		t.Fatalf("error %v does not wrap *InternalError", err)
	}
	if !strings.Contains(ie.Reason, "time went backwards") {
		t.Errorf("reason %q lost the panic text", ie.Reason)
	}
	if !strings.Contains(err.Error(), "run aborted at t=") {
		t.Errorf("error %q missing the abort context", err)
	}
}

// panicPolicy is a DPM policy that panics on its first decision — a stand-in
// for a foreign bug that must NOT be converted into a sim.InternalError.
type panicPolicy struct{}

func (panicPolicy) Decide(float64) Decision       { panic("boom: not an internal error") }
func (panicPolicy) ObserveIdle(durationS float64) {}
func (panicPolicy) Name() string                  { return "panicky" }

// Decision aliases keep panicPolicy implementing dpm.Policy without an import
// cycle gymnastics in the test.
type Decision = dpm.Decision

func TestForeignPanicNotSwallowed(t *testing.T) {
	tr := mp3Trace(t, 1, "AB")
	cfg := Config{
		Badge:      device.SmartBadge(),
		Proc:       sa1100.Default(),
		Trace:      tr,
		Controller: idealController(t, perfmodel.MP3Curve(), 0.15, false),
		DPM:        panicPolicy{},
		Kind:       workload.MP3,
	}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("foreign panic was swallowed")
		}
		if s, ok := r.(string); !ok || !strings.Contains(s, "boom") {
			t.Fatalf("unexpected panic value %v", r)
		}
	}()
	_, _ = Run(cfg)
}

// burstTrace hand-builds an overload scenario: a calm lead-in, then a burst
// arriving far faster than any operating point can serve, then a calm tail
// long enough for the watchdog to observe recovery.
func burstTrace(calmRate, burstWork float64, burst, tail int) *workload.Trace {
	tr := &workload.Trace{Kind: workload.MP3}
	now := 0.0
	add := func(gap, work float64, n int) {
		for i := 0; i < n; i++ {
			now += gap
			tr.Frames = append(tr.Frames, workload.TraceFrame{
				Seq:               len(tr.Frames),
				Arrival:           now,
				Work:              work,
				TrueArrivalRate:   calmRate,
				TrueDecodeRateMax: 40,
			})
		}
	}
	tr.Changes = []workload.RateChange{{ArrivalRate: calmRate, DecodeRateMax: 40}}
	add(1/calmRate, 1.0/40, 50) // calm lead-in
	add(1e-4, burstWork, burst) // the burst: arrivals effectively simultaneous
	add(1/calmRate, 1.0/40, tail)
	tr.Duration = now
	return tr
}

func TestOverloadGuardTripsAndRecoversEndToEnd(t *testing.T) {
	tr := burstTrace(5, 1.0/40, 200, 300)
	guard, err := policy.NewOverloadGuard(policy.DefaultGuardConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Badge:      device.SmartBadge(),
		Proc:       sa1100.Default(),
		Trace:      tr,
		Controller: idealController(t, perfmodel.MP3Curve(), 0.15, false),
		Kind:       workload.MP3,
		Guard:      guard,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.GuardTrips < 1 {
		t.Fatalf("watchdog never tripped under a 200-frame burst (peak queue %d)", res.PeakQueue)
	}
	if res.GuardEngagedS <= 0 {
		t.Error("trips recorded but no engaged time")
	}
	if guard.Engaged() {
		t.Error("run ended with the watchdog still engaged: no recovery")
	}
	st := guard.Stats(res.SimTime)
	if st.LastRecoveryS <= 0 || math.IsInf(st.LastRecoveryS, 0) {
		t.Errorf("recovery time %v not finite positive", st.LastRecoveryS)
	}
	if res.FramesDecoded != len(tr.Frames) {
		t.Errorf("decoded %d of %d frames", res.FramesDecoded, len(tr.Frames))
	}

	// The same burst without the watchdog: the run must still complete, and
	// the guarded run must not decode fewer frames.
	cfgBare := cfg
	cfgBare.Guard = nil
	cfgBare.Controller = idealController(t, perfmodel.MP3Curve(), 0.15, false)
	bare, err := Run(cfgBare)
	if err != nil {
		t.Fatal(err)
	}
	if bare.GuardTrips != 0 || bare.GuardEngagedS != 0 {
		t.Errorf("unguarded run reported guard activity: %d trips, %v s", bare.GuardTrips, bare.GuardEngagedS)
	}
}
