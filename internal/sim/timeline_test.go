package sim

import (
	"math"
	"strings"
	"testing"

	"smartbadge/internal/device"
	"smartbadge/internal/dpm"
	"smartbadge/internal/perfmodel"
	"smartbadge/internal/sa1100"
	"smartbadge/internal/workload"
)

func TestTimelineRecording(t *testing.T) {
	tr := gapTrace(t, 71)
	pol, err := dpm.NewFixedTimeout(1, device.Standby)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Badge:          device.SmartBadge(),
		Proc:           sa1100.Default(),
		Trace:          tr,
		Controller:     idealController(t, perfmodel.MP3Curve(), 0.15, false),
		DPM:            pol,
		Kind:           workload.MP3,
		RecordTimeline: true,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Timeline) == 0 {
		t.Fatal("no timeline recorded")
	}
	// Spans are contiguous, non-overlapping, and cover [first, SimTime].
	coverage := 0.0
	for i, s := range res.Timeline {
		if s.To <= s.From {
			t.Fatalf("span %d not positive: %+v", i, s)
		}
		if i > 0 && math.Abs(s.From-res.Timeline[i-1].To) > 1e-9 {
			t.Fatalf("gap between spans %d and %d", i-1, i)
		}
		coverage += s.Duration()
	}
	if math.Abs(coverage-res.SimTime) > 1e-6*res.SimTime {
		t.Errorf("timeline covers %v of %v", coverage, res.SimTime)
	}
	// Per-mode totals agree with the simulator's accounting.
	var totals [5]float64
	for _, s := range res.Timeline {
		totals[s.Mode] += s.Duration()
	}
	for m := ModeDecode; m <= ModeWake; m++ {
		if math.Abs(totals[m]-res.TimeInMode[m]) > 1e-6*(1+res.TimeInMode[m]) {
			t.Errorf("mode %v: timeline %v vs accounting %v", m, totals[m], res.TimeInMode[m])
		}
	}
	// Rendering includes the strip and the legend.
	text := FormatTimeline(res.Timeline, 80)
	lines := strings.Split(text, "\n")
	if len(lines) < 3 || len(lines[1]) != 80 {
		t.Errorf("strip line length = %d, want 80", len(lines[1]))
	}
	if !strings.Contains(text, "sleep") {
		t.Error("legend missing")
	}
	for _, ch := range lines[1] {
		switch ch {
		case 'D', '.', 's', 'O', 'w':
		default:
			t.Fatalf("unexpected glyph %q in strip", ch)
		}
	}
}

func TestTimelineOffByDefault(t *testing.T) {
	res := runMP3(t, 72, false, nil)
	if len(res.Timeline) != 0 {
		t.Error("timeline recorded without RecordTimeline")
	}
}

func TestFormatTimelineEdgeCases(t *testing.T) {
	if s := FormatTimeline(nil, 50); !strings.Contains(s, "empty") {
		t.Error("empty timeline not reported")
	}
	spans := []ModeSpan{{From: 0, To: 1, Mode: ModeDecode}}
	if s := FormatTimeline(spans, 1); !strings.Contains(s, "D") {
		t.Error("tiny width not handled")
	}
	// Off-state sleep renders as 'O'.
	spans = []ModeSpan{{From: 0, To: 10, Mode: ModeSleep, SleepState: device.Off}}
	if s := FormatTimeline(spans, 20); !strings.Contains(s, "O") {
		t.Error("off state not rendered as O")
	}
}
