package sim

import (
	"reflect"
	"testing"

	"smartbadge/internal/device"
	"smartbadge/internal/dpm"
	"smartbadge/internal/perfmodel"
	"smartbadge/internal/sa1100"
	"smartbadge/internal/workload"
)

// mp3Config assembles a fresh full config (trace, controller, DPM) for one
// seeded MP3 run. Every call rebuilds the controller and policy so that two
// configs never share mutable state.
func mp3Config(t *testing.T, seed uint64) Config {
	t.Helper()
	badge := device.SmartBadge()
	costs := dpm.CostsForBadge(badge, device.Standby)
	pol, err := dpm.NewFixedTimeout(costs.BreakEven(), device.Standby)
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Badge:      badge,
		Proc:       sa1100.Default(),
		Trace:      mp3Trace(t, seed, "ACEFBD"),
		Controller: idealController(t, perfmodel.MP3Curve(), 0.15, false),
		DPM:        pol,
		Kind:       workload.MP3,
	}
}

// TestScratchRunsBitIdentical is the correctness contract for the fleet
// engine's per-worker state reuse: a run through a recycled Scratch — even one
// warmed by runs of other seeds — must produce a Result bit-identical to a
// run that allocated everything fresh.
func TestScratchRunsBitIdentical(t *testing.T) {
	sc := NewScratch()
	for _, seed := range []uint64{21, 22, 23} {
		fresh, err := Run(mp3Config(t, seed))
		if err != nil {
			t.Fatal(err)
		}
		cfg := mp3Config(t, seed)
		cfg.Scratch = sc
		pooled, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(fresh, pooled) {
			t.Errorf("seed %d: pooled run diverged from fresh run:\nfresh  %+v\npooled %+v",
				seed, fresh, pooled)
		}
	}
}

// TestScratchReusesBuffers verifies the scratch actually recycles: after one
// warm-up run, a pooled run must allocate strictly less than a fresh run of
// the same configuration.
func TestScratchReusesBuffers(t *testing.T) {
	sc := NewScratch()
	warm := mp3Config(t, 31)
	warm.Scratch = sc
	if _, err := Run(warm); err != nil {
		t.Fatal(err)
	}
	freshAllocs := testing.AllocsPerRun(2, func() {
		if _, err := Run(mp3Config(t, 31)); err != nil {
			t.Fatal(err)
		}
	})
	pooledAllocs := testing.AllocsPerRun(2, func() {
		cfg := mp3Config(t, 31)
		cfg.Scratch = sc
		if _, err := Run(cfg); err != nil {
			t.Fatal(err)
		}
	})
	if pooledAllocs >= freshAllocs {
		t.Errorf("pooled run allocated %v times, fresh run %v — scratch recycled nothing",
			pooledAllocs, freshAllocs)
	}
}
