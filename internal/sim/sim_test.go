package sim

import (
	"math"
	"testing"

	"smartbadge/internal/changepoint"
	"smartbadge/internal/device"
	"smartbadge/internal/dpm"
	"smartbadge/internal/markov"
	"smartbadge/internal/mdp"
	"smartbadge/internal/perfmodel"
	"smartbadge/internal/policy"
	"smartbadge/internal/sa1100"
	"smartbadge/internal/stats"
	"smartbadge/internal/workload"
)

// mp3Trace generates a deterministic Table 3-style trace.
func mp3Trace(t *testing.T, seed uint64, labels string) *workload.Trace {
	t.Helper()
	clips, err := workload.MP3Sequence(labels)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := workload.Generate(stats.NewRNG(seed), clips, workload.GenerateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// idealController builds a DVS controller with oracle estimators.
func idealController(t *testing.T, curve perfmodel.Curve, target float64, alwaysMax bool) *policy.Controller {
	t.Helper()
	c, err := policy.NewController(sa1100.Default(), curve, target,
		policy.NewIdeal(0), policy.NewIdeal(0), alwaysMax)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func runMP3(t *testing.T, seed uint64, alwaysMax bool, pol dpm.Policy) *Result {
	t.Helper()
	tr := mp3Trace(t, seed, "ACEFBD")
	cfg := Config{
		Badge:      device.SmartBadge(),
		Proc:       sa1100.Default(),
		Trace:      tr,
		Controller: idealController(t, perfmodel.MP3Curve(), 0.15, alwaysMax),
		DPM:        pol,
		Kind:       workload.MP3,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestRunDecodesAllFrames(t *testing.T) {
	tr := mp3Trace(t, 1, "ACEFBD")
	res := runMP3(t, 1, false, nil)
	if res.FramesDecoded != len(tr.Frames) {
		t.Errorf("decoded %d of %d", res.FramesDecoded, len(tr.Frames))
	}
	if res.FrameDelay.Count() != int64(len(tr.Frames)) {
		t.Error("delay count mismatch")
	}
	if res.FrameDelay.Mean() <= 0 {
		t.Error("non-positive mean delay")
	}
	if res.SimTime < tr.Duration {
		t.Errorf("sim time %v shorter than trace duration %v", res.SimTime, tr.Duration)
	}
}

func TestEnergyConservation(t *testing.T) {
	res := runMP3(t, 2, false, nil)
	sumC := 0.0
	for _, e := range res.EnergyByComponent {
		if e < 0 {
			t.Error("negative component energy")
		}
		sumC += e
	}
	if math.Abs(sumC-res.EnergyJ) > 1e-6*res.EnergyJ {
		t.Errorf("component sum %v != total %v", sumC, res.EnergyJ)
	}
	sumM := 0.0
	for _, e := range res.EnergyByMode {
		sumM += e
	}
	if math.Abs(sumM-res.EnergyJ) > 1e-6*res.EnergyJ {
		t.Errorf("mode sum %v != total %v", sumM, res.EnergyJ)
	}
	sumT := 0.0
	for _, d := range res.TimeInMode {
		sumT += d
	}
	if math.Abs(sumT-res.SimTime) > 1e-6*res.SimTime {
		t.Errorf("mode time sum %v != sim time %v", sumT, res.SimTime)
	}
	if res.AvgPowerW <= 0 {
		t.Error("non-positive average power")
	}
}

func TestDeterminism(t *testing.T) {
	a := runMP3(t, 3, false, nil)
	b := runMP3(t, 3, false, nil)
	if a.EnergyJ != b.EnergyJ || a.FramesDecoded != b.FramesDecoded ||
		a.FrameDelay.Mean() != b.FrameDelay.Mean() || a.Sleeps != b.Sleeps {
		t.Error("identical runs diverged")
	}
}

func TestIdealDVSMeetsDelayTarget(t *testing.T) {
	res := runMP3(t, 4, false, nil)
	// The M/M/1 policy keeps the mean total frame delay at ~0.15 s; ladder
	// quantisation can only push it BELOW the target (extra service rate).
	if res.FrameDelay.Mean() > 0.15*1.25 {
		t.Errorf("mean frame delay %v, want <= %v", res.FrameDelay.Mean(), 0.15*1.25)
	}
	if res.FrameDelay.Mean() < 0.01 {
		t.Errorf("mean frame delay %v suspiciously low for a delay-targeting policy", res.FrameDelay.Mean())
	}
}

func TestDVSSavesEnergyVersusMax(t *testing.T) {
	dvs := runMP3(t, 5, false, nil)
	maxp := runMP3(t, 5, true, nil)
	if dvs.EnergyJ >= maxp.EnergyJ {
		t.Errorf("DVS energy %v not below max-performance %v", dvs.EnergyJ, maxp.EnergyJ)
	}
	// Max-performance runs flat out, so its frame delay is the smallest.
	if dvs.FrameDelay.Mean() < maxp.FrameDelay.Mean() {
		t.Error("DVS delay below max-performance delay is impossible")
	}
	// DVS must actually have used lower frequencies.
	if dvs.FreqTime.Mean() >= maxp.FreqTime.Mean() {
		t.Errorf("DVS mean frequency %v not below max %v", dvs.FreqTime.Mean(), maxp.FreqTime.Mean())
	}
}

func TestMaxPerfPinsTopFrequency(t *testing.T) {
	res := runMP3(t, 6, true, nil)
	top := sa1100.Default().Max().FrequencyMHz
	if res.FreqTime.Min() != top || res.FreqTime.Max() != top {
		t.Errorf("max-performance frequency range [%v, %v], want pinned at %v",
			res.FreqTime.Min(), res.FreqTime.Max(), top)
	}
	if res.Reconfigurations != 0 {
		t.Errorf("max-performance reconfigured %d times", res.Reconfigurations)
	}
}

func TestDelayViolationCounters(t *testing.T) {
	// Max performance keeps delays tiny: essentially no violations.
	maxp := runMP3(t, 41, true, nil)
	if frac := float64(maxp.DelayOver2xTarget) / float64(maxp.FramesDecoded); frac > 0.01 {
		t.Errorf("max-performance 2x-target violations = %v%%, want ~0", frac*100)
	}
	// The delay-targeting policy violates 1x occasionally (the M/M/1 mean is
	// the target, so a substantial fraction exceeds it), but the counters
	// must be consistent.
	dvs := runMP3(t, 41, false, nil)
	if dvs.DelayOver2xTarget > dvs.DelayOverTarget {
		t.Error("2x violations exceed 1x violations")
	}
	if dvs.DelayOverTarget > dvs.FramesDecoded {
		t.Error("violations exceed decoded frames")
	}
	if dvs.DelayOverTarget <= maxp.DelayOverTarget {
		t.Error("DVS should violate the target more often than flat-out")
	}
}

func TestLittlesLawHoldsApproximately(t *testing.T) {
	tr := mp3Trace(t, 7, "ACEFBD")
	res := runMP3(t, 7, false, nil)
	lambda := float64(len(tr.Frames)) / res.SimTime
	want := lambda * res.FrameDelay.Mean()
	got := res.QueueLen.Mean()
	if math.Abs(got-want)/want > 0.15 {
		t.Errorf("L = %v, λW = %v: Little's law violated beyond tolerance", got, want)
	}
}

func gapTrace(t *testing.T, seed uint64) *workload.Trace {
	t.Helper()
	clips, err := workload.MP3Sequence("ABCDEF")
	if err != nil {
		t.Fatal(err)
	}
	tr, err := workload.Generate(stats.NewRNG(seed), clips, workload.GenerateOptions{
		Gap: stats.Shifted{Offset: 10, Base: stats.NewPareto(10, 1.8)},
	})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func runGapTrace(t *testing.T, seed uint64, pol dpm.Policy) *Result {
	t.Helper()
	cfg := Config{
		Badge:      device.SmartBadge(),
		Proc:       sa1100.Default(),
		Trace:      gapTrace(t, seed),
		Controller: idealController(t, perfmodel.MP3Curve(), 0.15, false),
		DPM:        pol,
		Kind:       workload.MP3,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestDPMSleepsDuringGaps(t *testing.T) {
	badge := device.SmartBadge()
	costs := dpm.CostsForBadge(badge, device.Standby)
	pol, err := dpm.NewRenewalTimeout(
		stats.Shifted{Offset: 10, Base: stats.NewPareto(10, 1.8)}, costs, device.Standby, 0)
	if err != nil {
		t.Fatal(err)
	}
	withDPM := runGapTrace(t, 11, pol)
	without := runGapTrace(t, 11, dpm.AlwaysOn{})
	if withDPM.Sleeps == 0 {
		t.Fatal("DPM never slept despite 10s+ gaps")
	}
	if without.Sleeps != 0 {
		t.Fatal("always-on slept")
	}
	if withDPM.EnergyJ >= without.EnergyJ {
		t.Errorf("DPM energy %v not below always-on %v", withDPM.EnergyJ, without.EnergyJ)
	}
	if withDPM.TimeInMode[ModeSleep] <= 0 {
		t.Error("no sleep time recorded")
	}
	// Sleeping delays the frames that arrive during wake-up, so the mean
	// delay may rise slightly, but the system must still drain everything.
	if withDPM.FramesDecoded != without.FramesDecoded {
		t.Error("frame counts differ")
	}
}

func TestFixedTimeoutNeverFiresWhenLongerThanGaps(t *testing.T) {
	pol, err := dpm.NewFixedTimeout(1e6, device.Standby)
	if err != nil {
		t.Fatal(err)
	}
	res := runGapTrace(t, 12, pol)
	if res.Sleeps != 0 {
		t.Errorf("slept %d times with a timeout beyond every gap", res.Sleeps)
	}
}

func TestOracleDPMBeatsFixedTimeouts(t *testing.T) {
	badge := device.SmartBadge()
	costs := dpm.CostsForBadge(badge, device.Standby)
	oracle, err := dpm.NewOracle(costs, device.Standby)
	if err != nil {
		t.Fatal(err)
	}
	resOracle := runGapTrace(t, 13, oracle)
	for _, timeout := range []float64{0.5, 5, 50} {
		ft, err := dpm.NewFixedTimeout(timeout, device.Standby)
		if err != nil {
			t.Fatal(err)
		}
		resFT := runGapTrace(t, 13, ft)
		if resOracle.EnergyJ > resFT.EnergyJ*1.001 {
			t.Errorf("oracle energy %v worse than timeout %vs (%v)", resOracle.EnergyJ, timeout, resFT.EnergyJ)
		}
	}
}

func TestTwoLevelPolicyDeepens(t *testing.T) {
	// Standby after 1 s, deepen to off after 10 more seconds asleep: the
	// 10 s+ inter-clip gaps must trigger both transitions.
	pol, err := dpm.NewTwoLevelTimeout(1, 10)
	if err != nil {
		t.Fatal(err)
	}
	res := runGapTrace(t, 31, pol)
	if res.Sleeps == 0 {
		t.Fatal("two-level policy never slept")
	}
	if res.Deepens == 0 {
		t.Fatal("two-level policy never deepened to off")
	}
	if res.Deepens > res.Sleeps {
		t.Errorf("deepens %d > sleeps %d", res.Deepens, res.Sleeps)
	}
	// Deepening to off must save energy versus parking in standby forever.
	sbyOnly, err := dpm.NewFixedTimeout(1, device.Standby)
	if err != nil {
		t.Fatal(err)
	}
	resSby := runGapTrace(t, 31, sbyOnly)
	if res.EnergyJ >= resSby.EnergyJ {
		t.Errorf("off-deepening energy %v not below standby-only %v", res.EnergyJ, resSby.EnergyJ)
	}
	// A deepen timer longer than every gap must never fire.
	noDeep, err := dpm.NewTwoLevelTimeout(1, 1e8)
	if err != nil {
		t.Fatal(err)
	}
	resNo := runGapTrace(t, 31, noDeep)
	if resNo.Deepens != 0 {
		t.Errorf("deepened %d times with an unreachable deepen timeout", resNo.Deepens)
	}
}

func TestDualOracleUsesOffOnLongGaps(t *testing.T) {
	badge := device.SmartBadge()
	pol, err := dpm.NewDualOracle(
		dpm.CostsForBadge(badge, device.Standby),
		dpm.CostsForBadge(badge, device.Off),
	)
	if err != nil {
		t.Fatal(err)
	}
	res := runGapTrace(t, 32, pol)
	if res.Sleeps == 0 {
		t.Fatal("dual oracle never slept")
	}
	single, err := dpm.NewOracle(dpm.CostsForBadge(badge, device.Standby), device.Standby)
	if err != nil {
		t.Fatal(err)
	}
	resSingle := runGapTrace(t, 32, single)
	if res.EnergyJ > resSingle.EnergyJ*1.001 {
		t.Errorf("dual oracle %v worse than standby-only oracle %v", res.EnergyJ, resSingle.EnergyJ)
	}
}

func TestWakeLatencyDelaysFrames(t *testing.T) {
	// Sleeping immediately (timeout 0) forces a wake penalty on the first
	// frame of every burst.
	pol, err := dpm.NewFixedTimeout(0, device.Standby)
	if err != nil {
		t.Fatal(err)
	}
	slept := runGapTrace(t, 14, pol)
	awake := runGapTrace(t, 14, dpm.AlwaysOn{})
	if slept.FrameDelay.Max() < awake.FrameDelay.Max() {
		t.Error("wake latency should increase the worst-case frame delay")
	}
}

func TestConfigValidation(t *testing.T) {
	tr := mp3Trace(t, 15, "A")
	ctrl := idealController(t, perfmodel.MP3Curve(), 0.15, false)
	badge := device.SmartBadge()
	proc := sa1100.Default()
	cases := []Config{
		{Proc: proc, Trace: tr, Controller: ctrl},
		{Badge: badge, Trace: tr, Controller: ctrl},
		{Badge: badge, Proc: proc, Controller: ctrl},
		{Badge: badge, Proc: proc, Trace: tr},
		{Badge: badge, Proc: proc, Trace: &workload.Trace{}, Controller: ctrl},
		{Badge: badge, Proc: proc, Trace: tr, Controller: ctrl, IdleResetGap: -1},
	}
	for i, cfg := range cases {
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestRunOnlyOnce(t *testing.T) {
	tr := mp3Trace(t, 16, "A")
	s, err := New(Config{
		Badge:      device.SmartBadge(),
		Proc:       sa1100.Default(),
		Trace:      tr,
		Controller: idealController(t, perfmodel.MP3Curve(), 0.15, false),
		Kind:       workload.MP3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err == nil {
		t.Error("second Run should fail")
	}
}

func TestModeString(t *testing.T) {
	for m, want := range map[Mode]string{
		ModeDecode: "decode", ModeAwakeIdle: "idle", ModeSleep: "sleep", ModeWake: "wake",
	} {
		if m.String() != want {
			t.Errorf("%d.String() = %q", m, m.String())
		}
	}
	if Mode(9).String() != "Mode(9)" {
		t.Error("unknown mode string")
	}
}

// MPEG run: the video memory (DRAM) and display must be the active ones.
func TestMPEGComponentActivity(t *testing.T) {
	tr, err := workload.Generate(stats.NewRNG(21), []workload.Clip{workload.Football()}, workload.GenerateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Badge:      device.SmartBadge(),
		Proc:       sa1100.Default(),
		Trace:      tr,
		Controller: idealController(t, perfmodel.MPEGCurve(), 0.1, false),
		Kind:       workload.MPEG,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// DRAM must consume clearly more than SRAM on a video run (active vs
	// idle for the same decode time).
	if res.EnergyByComponent[device.NameDRAM] <= res.EnergyByComponent[device.NameSRAM] {
		t.Errorf("DRAM %v <= SRAM %v on a video run",
			res.EnergyByComponent[device.NameDRAM], res.EnergyByComponent[device.NameSRAM])
	}
}

func TestMP3ComponentActivity(t *testing.T) {
	res := runMP3(t, 22, false, nil)
	// On an audio run DRAM idles; SRAM decodes. SRAM active power (115 mW)
	// vs DRAM idle (10 mW): SRAM energy while decoding must exceed DRAM's.
	if res.EnergyByComponent[device.NameSRAM] <= res.EnergyByComponent[device.NameDRAM] {
		t.Errorf("SRAM %v <= DRAM %v on an audio run",
			res.EnergyByComponent[device.NameSRAM], res.EnergyByComponent[device.NameDRAM])
	}
}

func TestFiniteBufferDropsUnderBacklog(t *testing.T) {
	// A deliberately under-provisioned controller (tiny decode-rate belief,
	// fixed) backs the queue up; a finite buffer must shed frames.
	tr := mp3Trace(t, 51, "A")
	mk := func(cap int) *Result {
		ctrl, err := policy.NewController(sa1100.Default(), perfmodel.MP3Curve(), 0.15,
			policy.NewFixed(38.3), policy.NewFixed(45), false) // barely above arrival rate
		if err != nil {
			t.Fatal(err)
		}
		ctrl.ResetRates(38.3, 45)
		res, err := Run(Config{
			Badge: device.SmartBadge(), Proc: sa1100.Default(),
			Trace: tr, Controller: ctrl, Kind: workload.MP3, BufferCap: cap,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	bounded := mk(5)
	unbounded := mk(0)
	if unbounded.FramesDropped != 0 {
		t.Error("unbounded buffer dropped frames")
	}
	if bounded.FramesDropped == 0 {
		t.Error("5-frame buffer never dropped under backlog")
	}
	if bounded.FramesDecoded+bounded.FramesDropped != len(tr.Frames) {
		t.Error("decoded + dropped != total")
	}
	if bounded.PeakQueue > 5 {
		t.Errorf("peak queue %d exceeds capacity 5", bounded.PeakQueue)
	}
	// Shedding load keeps the survivors' delay bounded.
	if bounded.FrameDelay.Max() > unbounded.FrameDelay.Max() {
		t.Error("bounded buffer should cap worst-case delay")
	}
}

// Cross-validation against the analytic M/M/1/K chain: with exponential
// arrivals and service at a fixed frequency, the simulator's drop fraction
// and accepted-frame delay must match the birth-death steady state.
func TestFiniteBufferMatchesMM1K(t *testing.T) {
	const lambda, mu = 30.0, 40.0
	const capK = 5
	clip := workload.Clip{
		Label: "mm1k",
		Kind:  workload.MP3,
		Segments: []workload.Segment{{
			Duration: 600, ArrivalRate: lambda, DecodeRateMax: mu,
		}},
	}
	tr, err := workload.Generate(stats.NewRNG(61), []workload.Clip{clip}, workload.GenerateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Max policy pins the top frequency, so service times are the raw
	// exponential works — exactly the analytic model's assumptions.
	ctrl, err := policy.NewController(sa1100.Default(), perfmodel.MP3Curve(), 0.15,
		policy.NewFixed(lambda), policy.NewFixed(mu), true)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{
		Badge: device.SmartBadge(), Proc: sa1100.Default(),
		Trace: tr, Controller: ctrl, Kind: workload.MP3, BufferCap: capK,
	})
	if err != nil {
		t.Fatal(err)
	}
	want, err := markov.AnalyzeMM1K(lambda, mu, capK)
	if err != nil {
		t.Fatal(err)
	}
	dropFrac := float64(res.FramesDropped) / float64(len(tr.Frames))
	if math.Abs(dropFrac-want.Blocking) > 0.012 {
		t.Errorf("drop fraction = %v, analytic blocking = %v", dropFrac, want.Blocking)
	}
	if rel := math.Abs(res.FrameDelay.Mean()-want.MeanDelay) / want.MeanDelay; rel > 0.08 {
		t.Errorf("mean delay = %v, analytic = %v (rel %v)", res.FrameDelay.Mean(), want.MeanDelay, rel)
	}
	if rel := math.Abs(res.QueueLen.Mean()-want.MeanLength) / want.MeanLength; rel > 0.08 {
		t.Errorf("mean queue = %v, analytic = %v (rel %v)", res.QueueLen.Mean(), want.MeanLength, rel)
	}
}

func TestNegativeBufferCapRejected(t *testing.T) {
	tr := mp3Trace(t, 52, "A")
	_, err := New(Config{
		Badge: device.SmartBadge(), Proc: sa1100.Default(),
		Trace: tr, Controller: idealController(t, perfmodel.MP3Curve(), 0.15, false),
		BufferCap: -1,
	})
	if err == nil {
		t.Error("negative buffer capacity accepted")
	}
}

// Stress: near-saturation load (arrivals at 90% of the full-speed decode
// rate) must stay stable under the delay-targeting policy — the controller
// detects the unachievable target and runs flat out.
func TestNearSaturationStress(t *testing.T) {
	clip := workload.Clip{
		Label: "hot",
		Kind:  workload.MP3,
		Segments: []workload.Segment{{
			Duration: 400, ArrivalRate: 99, DecodeRateMax: 110,
		}},
	}
	tr, err := workload.Generate(stats.NewRNG(91), []workload.Clip{clip}, workload.GenerateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ctrl := idealController(t, perfmodel.MP3Curve(), 0.15, false)
	ctrl.ResetRates(99, 110)
	res, err := Run(Config{
		Badge: device.SmartBadge(), Proc: sa1100.Default(),
		Trace: tr, Controller: ctrl, Kind: workload.MP3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.FramesDecoded != len(tr.Frames) {
		t.Fatal("frames lost")
	}
	// Required µ = 99 + 6.67 = 105.7 fr/s; the slowest sufficient rung is
	// 206.4 MHz (sustaining 106.4 fr/s) — the controller must never run
	// below it.
	if res.FreqTime.Min() < 206.4 {
		t.Errorf("near-saturation run dropped below the sufficient rung (min %v MHz)", res.FreqTime.Min())
	}
	// ρ = 0.9: analytic M/M/1 delay = 1/(110-99) ≈ 91 ms. A finite run at
	// this utilisation has very high variance (one excursion dominates), so
	// only a stability band is asserted — the queue must not diverge.
	want := 1.0 / 11
	if res.FrameDelay.Mean() > 4*want || res.FrameDelay.Mean() < want/4 {
		t.Errorf("mean delay %v outside the stability band around analytic %v", res.FrameDelay.Mean(), want)
	}
}

// The queue-aware MDP policy drives the simulator through the QueuePolicy
// hook; with a single-segment exponential workload the simulated mean queue
// must match the policy's exact birth-death steady state, and the simulated
// energy+delay objective must beat a fixed-frequency policy's.
func TestMDPQueuePolicyEndToEnd(t *testing.T) {
	const lambda, decodeMax = 25.0, 110.0
	proc := sa1100.Default()
	curve := perfmodel.MP3Curve()
	fMax := proc.Max().FrequencyMHz
	mu := make([]float64, proc.NumPoints())
	pw := make([]float64, proc.NumPoints())
	for i, p := range proc.Points() {
		mu[i] = decodeMax * curve.PerfRatio(p.FrequencyMHz/fMax)
		pw[i] = p.ActivePowerW
	}
	cfg := mdp.Config{
		Lambda: lambda, Mu: mu, PowerW: pw,
		IdlePowerW: proc.IdlePowerW(), DelayWeightW: 0.5, QueueCap: 40,
	}
	pol, err := mdp.Solve(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ladder, err := pol.Ladder(proc)
	if err != nil {
		t.Fatal(err)
	}

	clip := workload.Clip{
		Label: "mdp",
		Kind:  workload.MP3,
		Segments: []workload.Segment{{
			Duration: 1200, ArrivalRate: lambda, DecodeRateMax: decodeMax,
		}},
	}
	tr, err := workload.Generate(stats.NewRNG(81), []workload.Clip{clip}, workload.GenerateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	run := func(qp QueuePolicy) *Result {
		ctrl := idealController(t, curve, 0.15, false)
		ctrl.ResetRates(lambda, decodeMax)
		res, err := Run(Config{
			Badge: device.SmartBadge(), Proc: proc,
			Trace: tr, Controller: ctrl, Kind: workload.MP3,
			QueuePolicy: qp,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	res := run(ladder)
	if res.FramesDecoded != len(tr.Frames) {
		t.Fatal("frames lost")
	}
	if res.Reconfigurations == 0 {
		t.Error("queue-aware policy never switched frequency")
	}
	// Simulated mean queue vs the exact birth-death steady state.
	wantL, err := mdp.MeanQueueLength(cfg, pol.Action)
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(res.QueueLen.Mean()-wantL) / wantL; rel > 0.10 {
		t.Errorf("mean queue = %v, birth-death = %v (rel %v)", res.QueueLen.Mean(), wantL, rel)
	}
	// Simulated objective (CPU power while busy + idle power + β·L) must
	// beat a mid-ladder fixed frequency's simulated objective.
	objective := func(r *Result) float64 {
		cpuPower := r.EnergyByComponent[device.NameCPU] / r.SimTime
		return cpuPower + cfg.DelayWeightW*r.QueueLen.Mean()
	}
	fixedIdx := 6
	fixedRes := run(fixedQP{proc.Point(fixedIdx)})
	if objective(res) > objective(fixedRes)*1.02 {
		t.Errorf("MDP objective %v clearly worse than fixed[%d] %v",
			objective(res), fixedIdx, objective(fixedRes))
	}
}

type fixedQP struct{ op sa1100.OperatingPoint }

func (f fixedQP) OperatingPointFor(int) sa1100.OperatingPoint { return f.op }

// Robustness: random clip parameters within the validity envelope never
// break the simulator's invariants.
func TestRandomWorkloadInvariantsProperty(t *testing.T) {
	for seed := uint64(0); seed < 25; seed++ {
		rng := stats.NewRNG(9000 + seed)
		nClips := 1 + rng.Intn(4)
		clips := make([]workload.Clip, nClips)
		for i := range clips {
			arr := rng.Uniform(5, 40)
			dec := rng.Uniform(arr*1.4, arr*5) // always sustainable at fmax
			clips[i] = workload.Clip{
				Label: string(rune('a' + i)),
				Kind:  workload.Kind(rng.Intn(2)),
				Segments: []workload.Segment{{
					Duration:      rng.Uniform(5, 40),
					ArrivalRate:   arr,
					DecodeRateMax: dec,
				}},
			}
			if clips[i].Kind == workload.MPEG {
				clips[i].GOP = workload.DefaultGOP()
			}
		}
		var gap stats.Distribution
		if rng.Intn(2) == 0 {
			gap = stats.Shifted{Offset: 1, Base: stats.NewPareto(2, 1.5)}
		}
		tr, err := workload.Generate(rng.Split(), clips, workload.GenerateOptions{Gap: gap})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		target := rng.Uniform(0.05, 0.5)
		first := tr.Changes[0]
		ctrl, err := policy.NewController(sa1100.Default(), perfmodel.MPEGCurve(), target,
			policy.NewIdeal(first.ArrivalRate), policy.NewIdeal(first.DecodeRateMax), false)
		if err != nil {
			t.Fatal(err)
		}
		ctrl.ResetRates(first.ArrivalRate, first.DecodeRateMax)
		var pol dpm.Policy
		if rng.Intn(2) == 0 {
			pol, err = dpm.NewFixedTimeout(rng.Uniform(0, 2), device.Standby)
			if err != nil {
				t.Fatal(err)
			}
		}
		res, err := Run(Config{
			Badge: device.SmartBadge(), Proc: sa1100.Default(),
			Trace: tr, Controller: ctrl, DPM: pol, Kind: clips[0].Kind,
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		// Invariants.
		if res.FramesDecoded != len(tr.Frames) {
			t.Fatalf("seed %d: decoded %d of %d", seed, res.FramesDecoded, len(tr.Frames))
		}
		if res.EnergyJ <= 0 || res.SimTime <= 0 {
			t.Fatalf("seed %d: non-positive energy or time", seed)
		}
		sum := 0.0
		for _, e := range res.EnergyByComponent {
			sum += e
		}
		if math.Abs(sum-res.EnergyJ) > 1e-6*res.EnergyJ {
			t.Fatalf("seed %d: component energies do not sum to total", seed)
		}
		if res.FrameDelay.Min() < 0 {
			t.Fatalf("seed %d: negative frame delay", seed)
		}
		if res.Deepens > res.Sleeps {
			t.Fatalf("seed %d: deepens > sleeps", seed)
		}
	}
}

func TestChangePointPolicyEndToEnd(t *testing.T) {
	// Full pipeline: change-point estimators driving the controller.
	mkEst := func(rates []float64, initial float64) *policy.ChangePoint {
		t.Helper()
		cpCfg := changepoint.DefaultConfig(rates)
		cpCfg.CharacterisationWindows = 600
		th, err := changepoint.Characterise(cpCfg)
		if err != nil {
			t.Fatal(err)
		}
		det, err := changepoint.NewDetector(cpCfg, th, initial)
		if err != nil {
			t.Fatal(err)
		}
		return policy.NewChangePoint(det)
	}
	ctrl, err := policy.NewController(sa1100.Default(), perfmodel.MP3Curve(), 0.15,
		mkEst([]float64{9, 14, 19, 21, 28, 38}, 20),
		mkEst([]float64{60, 85, 95, 110, 125, 140}, 95), false)
	if err != nil {
		t.Fatal(err)
	}
	tr := mp3Trace(t, 23, "ACEFBD")
	res, err := Run(Config{
		Badge:      device.SmartBadge(),
		Proc:       sa1100.Default(),
		Trace:      tr,
		Controller: ctrl,
		Kind:       workload.MP3,
	})
	if err != nil {
		t.Fatal(err)
	}
	maxRes := runMP3(t, 23, true, nil)
	if res.EnergyJ >= maxRes.EnergyJ {
		t.Errorf("change-point DVS energy %v not below max %v", res.EnergyJ, maxRes.EnergyJ)
	}
	// Delay must stay within a small multiple of the target.
	if res.FrameDelay.Mean() > 0.5 {
		t.Errorf("change-point mean delay %v too high", res.FrameDelay.Mean())
	}
}

// recordingDPM wraps a policy, recording the oracle idle length of every
// Decide call and cross-checking the simulator's O(1) arrival peek against a
// linear scan of the event heap at each idle entry.
type recordingDPM struct {
	inner   dpm.Policy
	sim     *Simulator
	t       *testing.T
	oracles []float64
}

func (r *recordingDPM) Decide(oracleIdle float64) dpm.Decision {
	r.oracles = append(r.oracles, oracleIdle)
	if r.sim != nil {
		want := -1.0
		for _, e := range r.sim.events {
			if e.kind == evArrival && (want < 0 || e.time < want) {
				want = e.time
			}
		}
		if got := r.sim.peekNextArrivalTime(); got != want {
			r.t.Errorf("peekNextArrivalTime = %v, heap scan says %v", got, want)
		}
	}
	return r.inner.Decide(oracleIdle)
}
func (r *recordingDPM) ObserveIdle(d float64) { r.inner.ObserveIdle(d) }
func (r *recordingDPM) Name() string          { return r.inner.Name() }

// TestIdleDrainsWithoutArrivals is the regression test for the tracked
// pendingArrival field: every idle entry while frames remain must consult the
// DPM policy with the true (positive) gap to the next arrival, and the final
// idle entry after the trace is exhausted must drain the run without asking
// the policy to sleep — otherwise an eager timeout policy would park the
// badge in standby forever (or charge phantom sleep energy past trace end).
func TestIdleDrainsWithoutArrivals(t *testing.T) {
	const tau = 0.05
	pol, err := dpm.NewFixedTimeout(tau, device.Standby)
	if err != nil {
		t.Fatal(err)
	}
	rec := &recordingDPM{inner: pol, t: t}
	cfg := Config{
		Badge:      device.SmartBadge(),
		Proc:       sa1100.Default(),
		Trace:      gapTrace(t, 11),
		Controller: idealController(t, perfmodel.MP3Curve(), 0.15, false),
		DPM:        rec,
		Kind:       workload.MP3,
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rec.sim = s
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.FramesDecoded != len(cfg.Trace.Frames) {
		t.Fatalf("decoded %d of %d frames", res.FramesDecoded, len(cfg.Trace.Frames))
	}
	// Drained: the tracked peek reports trace exhaustion and no events remain.
	if got := s.peekNextArrivalTime(); got != -1 {
		t.Errorf("after drain peekNextArrivalTime = %v, want -1", got)
	}
	if n := s.events.Len(); n != 0 {
		t.Errorf("after drain %d events still queued", n)
	}
	if s.mode != ModeAwakeIdle {
		t.Errorf("after drain mode = %v, want %v (never sleep once arrivals end)", s.mode, ModeAwakeIdle)
	}
	// Decide must only ever see real upcoming arrivals: strictly positive
	// gaps, and never a call for the post-trace drain.
	if len(rec.oracles) == 0 {
		t.Fatal("DPM policy never consulted")
	}
	for i, o := range rec.oracles {
		if o <= 0 {
			t.Errorf("Decide call %d saw non-positive oracle idle %v", i, o)
		}
	}
	// A fixed timeout sleeps exactly in the idle periods longer than tau, so
	// the realised sleep count is pinned by the recorded oracles. A spurious
	// sleep at drain (or a stale-peek shortfall) breaks the equality.
	want := 0
	for _, o := range rec.oracles {
		if o > tau {
			want++
		}
	}
	if res.Sleeps != want {
		t.Errorf("Sleeps = %d, want %d (idle periods longer than %gs)", res.Sleeps, want, tau)
	}
}
