package sim

import (
	"fmt"
	"strings"

	"smartbadge/internal/device"
)

// ModeSpan is one maximal interval during which the badge's mode, operating
// frequency and sleep state were constant.
type ModeSpan struct {
	From, To float64
	Mode     Mode
	// FreqMHz is the decode clock during ModeDecode spans (0 otherwise).
	FreqMHz float64
	// SleepState is the low-power state during ModeSleep spans.
	SleepState device.PowerState
}

// Duration returns the span length.
func (s ModeSpan) Duration() float64 { return s.To - s.From }

// recordSpan extends the timeline, merging with the previous span when the
// badge state did not actually change.
func (s *Simulator) recordSpan(from, to float64) {
	if !s.cfg.RecordTimeline || to <= from {
		return
	}
	span := ModeSpan{From: from, To: to, Mode: s.mode}
	if s.mode == ModeDecode {
		span.FreqMHz = s.appliedOp.FrequencyMHz
	}
	if s.mode == ModeSleep {
		span.SleepState = s.sleepState
	}
	tl := s.res.Timeline
	if n := len(tl); n > 0 {
		last := &tl[n-1]
		if last.To == from && last.Mode == span.Mode &&
			last.FreqMHz == span.FreqMHz && last.SleepState == span.SleepState {
			last.To = to
			return
		}
	}
	s.res.Timeline = append(s.res.Timeline, span)
}

// timelineGlyph maps a mode to its strip character.
func timelineGlyph(m Mode, sleepState device.PowerState) byte {
	switch m {
	case ModeDecode:
		return 'D'
	case ModeAwakeIdle:
		return '.'
	case ModeSleep:
		if sleepState == device.Off {
			return 'O'
		}
		return 's'
	case ModeWake:
		return 'w'
	default:
		return '?'
	}
}

// FormatTimeline renders the timeline as a fixed-width ASCII strip — each
// column is a time bucket showing the mode that dominated it — followed by a
// per-mode time summary. Useful for eyeballing what a policy actually did.
//
//	D decode   . awake-idle   s standby   O off   w waking
func FormatTimeline(spans []ModeSpan, width int) string {
	if len(spans) == 0 {
		return "(empty timeline)\n"
	}
	if width < 10 {
		width = 10
	}
	start := spans[0].From
	end := spans[len(spans)-1].To
	total := end - start
	if total <= 0 {
		return "(empty timeline)\n"
	}
	bucket := total / float64(width)
	strip := make([]byte, width)
	// For each bucket pick the mode with the most time in it.
	si := 0
	for b := 0; b < width; b++ {
		bFrom := start + float64(b)*bucket
		bTo := bFrom + bucket
		var timeBy [5]float64
		var sleepGlyph byte = 's'
		for si < len(spans) && spans[si].From < bTo {
			ov := min(spans[si].To, bTo) - max(spans[si].From, bFrom)
			if ov > 0 {
				timeBy[spans[si].Mode] += ov
				if spans[si].Mode == ModeSleep && spans[si].SleepState == device.Off {
					sleepGlyph = 'O'
				}
			}
			if spans[si].To <= bTo {
				si++
			} else {
				break
			}
		}
		bestMode := ModeAwakeIdle
		bestT := -1.0
		for m := ModeDecode; m < numModes; m++ {
			if timeBy[m] > bestT {
				bestT, bestMode = timeBy[m], m
			}
		}
		g := timelineGlyph(bestMode, device.Standby)
		if bestMode == ModeSleep {
			g = sleepGlyph
		}
		strip[b] = g
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "timeline %.1fs -> %.1fs (%.2fs per column)\n", start, end, bucket)
	sb.Write(strip)
	sb.WriteByte('\n')
	var totals [5]float64
	for _, s := range spans {
		totals[s.Mode] += s.Duration()
	}
	fmt.Fprintf(&sb, "D decode %.1fs | . idle %.1fs | s/O sleep %.1fs | w wake %.1fs\n",
		totals[ModeDecode], totals[ModeAwakeIdle], totals[ModeSleep], totals[ModeWake])
	return sb.String()
}
