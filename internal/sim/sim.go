// Package sim is the discrete-event simulator of the whole SmartBadge system
// model (Figure 1 of the paper): the workload source streaming frames over
// the WLAN, the frame buffer, the decoding device with its DVS-capable
// processor, and the power manager that observes every event, adjusts CPU
// frequency and voltage in the active state, and commands standby/off
// transitions in the idle state.
//
// The simulator integrates per-component energy over the exact state
// trajectory the policies induce, which is the quantity every table of the
// paper's evaluation reports.
package sim

import (
	"fmt"
	"sort"

	"smartbadge/internal/device"
	"smartbadge/internal/dpm"
	"smartbadge/internal/obs"
	"smartbadge/internal/perfmodel"
	"smartbadge/internal/policy"
	"smartbadge/internal/queue"
	"smartbadge/internal/sa1100"
	"smartbadge/internal/stats"
	"smartbadge/internal/workload"
)

// Mode is the simulator's global operating mode, which determines every
// component's power state.
type Mode int

// The four modes the badge cycles through.
const (
	// ModeDecode: a frame is being decoded. CPU at the current operating
	// point, decode memory + FLASH + WLAN active, display active for video.
	ModeDecode Mode = iota
	// ModeAwakeIdle: powered up but between frames (buffer empty or waiting
	// for the decoder). Every component in its idle state.
	ModeAwakeIdle
	// ModeSleep: the power manager put the badge in standby or off.
	ModeSleep
	// ModeWake: transitioning from sleep back to active; everything powered
	// while nothing useful runs — this is where the transition energy goes.
	ModeWake
	numModes
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ModeDecode:
		return "decode"
	case ModeAwakeIdle:
		return "idle"
	case ModeSleep:
		return "sleep"
	case ModeWake:
		return "wake"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Config assembles one simulation run.
type Config struct {
	Badge *device.Badge
	Proc  *sa1100.Processor
	Trace *workload.Trace
	// Controller drives DVS; its estimators define the policy under test.
	Controller *policy.Controller
	// DPM decides standby/off transitions at idle entry. nil means AlwaysOn.
	DPM dpm.Policy
	// Kind selects which data memory is active during decode (SRAM for MP3,
	// DRAM for MPEG) and whether the display is on during playback. Traces
	// generated from a clip list override this per clip, so mixed audio/video
	// sequences (the Table 5 scenario) account each burst correctly.
	Kind workload.Kind
	// IdleResetGap: an arrival after at least this much idle time starts a
	// fresh burst — the gap sample is NOT fed to the arrival estimator, since
	// the paper's exponential arrival model holds only in the active state.
	// Zero selects the default of 1 second.
	IdleResetGap float64
	// WLANRxS is the radio's active receive time per frame. The WLAN's
	// energy follows the *arrival* stream, not the decode schedule: each
	// frame costs a fixed RX burst and the radio otherwise sits in its idle
	// (listening) state while the badge is awake, so slowing the CPU down
	// does not inflate radio energy. Zero selects the default of 4 ms.
	WLANRxS float64
	// BufferCap bounds the frame buffer (the real SmartBadge has finite
	// memory for buffered frames). Arrivals to a full buffer are dropped and
	// counted in Result.FramesDropped. 0 means unbounded.
	BufferCap int
	// RecordTimeline retains the mode timeline in Result.Timeline
	// (see FormatTimeline). Off by default: long runs produce many spans.
	RecordTimeline bool
	// Obs attaches the observability layer: when non-nil, the simulator
	// streams structured events (arrivals, decodes, operating-point changes,
	// sleep/wake transitions, per-mode energy) to Obs.Trace and publishes the
	// run's metrics to Obs.Metrics at the end of Run. nil is a zero-overhead
	// fast path: results are bit-identical with and without observability.
	Obs *obs.Obs
	// QueuePolicy, when non-nil, overrides the rate-based controller's
	// operating-point choice at every decode start with a function of the
	// buffer occupancy — the interface the queue-aware MDP policy
	// (internal/mdp) plugs into. The Controller is still required: its
	// estimators keep running and its delay target defines the QoS counters.
	QueuePolicy QueuePolicy
	// Guard, when non-nil, is the overload watchdog (graceful degradation
	// under fault injection): the simulator reports buffer occupancy and the
	// controller's demand ratio at every buffer-changing event, and while the
	// guard is engaged every decode starts at the maximum operating point
	// regardless of the controller's (or QueuePolicy's) selection. nil — the
	// default and the fault-free configuration — changes nothing.
	Guard *policy.OverloadGuard
	// Derate lists power-derating windows (battery voltage sag injected by
	// internal/faults: a sagging supply drags down DC-DC conversion
	// efficiency, so every component draws more input power for the same
	// work). All draw inside [StartS, EndS) is multiplied by Factor. Windows
	// must be non-overlapping; nil leaves the power model untouched.
	Derate []PowerDerate
	// Scratch, when non-nil, recycles the hot-path allocations (event heap,
	// per-component energy accumulators, power vectors) from a previous run —
	// the sync.Pool-style per-worker reuse the fleet batch engine
	// (internal/fleet) relies on. Results are bit-identical with and without
	// a Scratch; a Scratch must never be used by two simulations
	// concurrently. nil allocates fresh state as always.
	Scratch *Scratch
}

// Scratch holds reusable per-run simulator state. A zero Scratch is ready to
// use; it warms up over the first run and is handed back (with its grown
// capacities) when Run completes. One Scratch serves any sequence of
// configurations — capacities adapt — but only one run at a time.
type Scratch struct {
	events     eventHeap
	energy     []float64
	lastEnergy []float64
	power      [numModes][]float64
}

// NewScratch returns an empty scratch.
func NewScratch() *Scratch { return &Scratch{} }

// resizeZero returns buf resized to n and zeroed, reallocating only when the
// capacity is insufficient.
func resizeZero(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	buf = buf[:n]
	for i := range buf {
		buf[i] = 0
	}
	return buf
}

// PowerDerate scales every component's power draw by Factor during
// [StartS, EndS).
type PowerDerate struct {
	StartS float64
	EndS   float64
	Factor float64
}

// QueuePolicy selects the operating point from the buffer occupancy at the
// moment a frame's decode starts.
type QueuePolicy interface {
	// OperatingPointFor returns the point to decode at when queueLen frames
	// are buffered (including the one about to decode).
	OperatingPointFor(queueLen int) sa1100.OperatingPoint
}

// Result is the outcome of one run: the numbers the paper's tables report
// plus diagnostics.
type Result struct {
	// EnergyJ is total badge energy from t=0 until the last frame finished
	// decoding.
	EnergyJ float64
	// EnergyByComponent maps component name to joules.
	EnergyByComponent map[string]float64
	// EnergyByMode splits energy across the four modes.
	EnergyByMode [4]float64
	// TimeInMode splits wall-clock time across the four modes.
	TimeInMode [4]float64
	// SimTime is the simulated duration (s).
	SimTime float64
	// FramesDecoded counts completed frames.
	FramesDecoded int
	// FramesDropped counts arrivals discarded because the buffer was full
	// (only with a finite Config.BufferCap).
	FramesDropped int
	// FrameDelay aggregates per-frame total delay (arrival to decode
	// completion) — the paper's performance metric.
	FrameDelay stats.Moments
	// DelayOverTarget and DelayOver2xTarget count frames whose total delay
	// exceeded the controller's delay target (respectively twice it) — the
	// QoS view of the same metric.
	DelayOverTarget   int
	DelayOver2xTarget int
	// QueueLen is the time-weighted buffer occupancy.
	QueueLen stats.TimeWeighted
	// PeakQueue is the maximum buffer occupancy.
	PeakQueue int
	// Reconfigurations counts operating-point changes applied.
	Reconfigurations int
	// Sleeps counts standby/off transitions taken.
	Sleeps int
	// Deepens counts standby-to-off deepening transitions.
	Deepens int
	// AvgPowerW is EnergyJ / SimTime.
	AvgPowerW float64
	// GuardTrips counts overload-watchdog engagements (0 without a guard or
	// when the run never overloaded).
	GuardTrips int
	// GuardEngagedS is the total time the watchdog held the processor at
	// maximum performance (safe mode).
	GuardEngagedS float64
	// FreqTime is the time-weighted average CPU frequency while decoding.
	FreqTime stats.TimeWeighted
	// Timeline holds the mode spans when Config.RecordTimeline is set.
	Timeline []ModeSpan
}

type eventKind int

const (
	evArrival eventKind = iota
	evDecodeDone
	evSleepTimer
	evDeepenTimer
	evWakeDone
)

type event struct {
	time   float64
	seq    int64 // tiebreaker for deterministic ordering
	kind   eventKind
	epoch  int // guards stale sleep timers
	frame  int
	target device.PowerState // sleep timer's destination state
}

// eventHeap is a hand-rolled binary min-heap ordered by (time, seq). It
// stores events directly rather than going through container/heap, whose
// interface{} Push/Pop boxes every event — two allocations per event, the
// dominant allocation cost of a run. seq is unique, so the order is total
// and pops are deterministic.
type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}

func (h *eventHeap) push(e event) {
	*h = append(*h, e)
	q := *h
	for i := len(q) - 1; i > 0; {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q[i], q[parent] = q[parent], q[i]
		i = parent
	}
}

func (h *eventHeap) pop() event {
	q := *h
	n := len(q) - 1
	top := q[0]
	q[0] = q[n]
	q = q[:n]
	*h = q
	for i := 0; ; {
		left, right := 2*i+1, 2*i+2
		min := i
		if left < n && q.less(left, min) {
			min = left
		}
		if right < n && q.less(right, min) {
			min = right
		}
		if min == i {
			break
		}
		q[i], q[min] = q[min], q[i]
		i = min
	}
	return top
}

// InternalError reports a violated simulator invariant — a bug in the
// simulator or a configuration hostile enough to evade validation, never a
// normal outcome. Internally it travels as a panic (the invariant checks sit
// on hot paths that have no error return), but Run recovers it and returns it
// wrapped, so library callers and parallel sweep workers fail loudly per run
// instead of killing the whole process. Reason carries the original panic
// text; match with errors.As.
type InternalError struct {
	Reason string
}

// Error implements error.
func (e *InternalError) Error() string { return "sim: internal error: " + e.Reason }

// internalf panics with an *InternalError for Run to recover.
func internalf(format string, args ...any) {
	panic(&InternalError{Reason: fmt.Sprintf(format, args...)})
}

// Simulator executes one run. Create with New, drive with Run.
type Simulator struct {
	cfg   Config
	badge []device.Component
	now   float64
	mode  Mode
	// appliedOp is the operating point the decoder actually runs at;
	// the controller's selection is applied at frame boundaries.
	appliedOp sa1100.OperatingPoint
	buffer    *queue.Buffer
	events    eventHeap
	seq       int64
	epoch     int
	decoding  bool
	// sleepState is the low-power state while in ModeSleep.
	sleepState device.PowerState
	idleSince  float64
	lastArrive float64
	haveArrive bool
	nextFrame  int
	// pendingArrival is the time of the single outstanding evArrival in the
	// heap, or -1 when the trace is exhausted — an O(1) replacement for
	// scanning the heap at every idle entry.
	pendingArrival float64
	// curKind is the application kind of the burst currently streaming,
	// taken from the arriving frame's clip.
	curKind workload.Kind
	res     Result

	// Hot-path caches. energyComp accumulates joules per component in badge
	// order (materialised into Result.EnergyByComponent once, at the end of
	// Run). powerVec caches the per-component power vector of each mode;
	// powerOK invalidates a mode's vector when an input it depends on changes
	// (appliedOp → decode/wake, curKind → decode/idle, sleepState → sleep).
	energyComp []float64
	powerVec   [numModes][]float64
	powerOK    [numModes]bool
	// wlanIdx/sramIdx/dramIdx locate the components charged per-event
	// (-1 when absent from the badge); wlanRxE and memCoef precompute the
	// constant factors of those per-event charges.
	wlanIdx, sramIdx, dramIdx int
	wlanRxE                   float64
	sramCoef, dramCoef        float64
	// derate is Config.Derate validated and sorted by start time (a copy, so
	// the caller's slice is never mutated). Empty on the fault-free path,
	// where it costs a single len check per charge.
	derate []PowerDerate

	// Observability (all nil/empty when Config.Obs is nil — the fast path).
	// tr is the event tracer; lastEnergy snapshots energyComp at the last
	// energy event so per-mode deltas can be emitted. mDelay is the frame
	// delay histogram handle (nil-safe), opResidency accumulates decode time
	// per operating-point frequency for the residency metrics.
	tr          *obs.Tracer
	lastEnergy  []float64
	mDelay      *obs.Histogram
	opResidency map[float64]float64
}

// New validates the configuration and returns a ready simulator.
func New(cfg Config) (*Simulator, error) {
	if cfg.Badge == nil || cfg.Proc == nil || cfg.Trace == nil || cfg.Controller == nil {
		return nil, fmt.Errorf("sim: badge, processor, trace and controller are all required")
	}
	if len(cfg.Trace.Frames) == 0 {
		return nil, fmt.Errorf("sim: empty trace")
	}
	if cfg.DPM == nil {
		cfg.DPM = dpm.AlwaysOn{}
	}
	if cfg.IdleResetGap == 0 {
		cfg.IdleResetGap = 1.0
	}
	if cfg.IdleResetGap < 0 {
		return nil, fmt.Errorf("sim: negative idle reset gap")
	}
	if cfg.WLANRxS == 0 {
		cfg.WLANRxS = 0.004
	}
	if cfg.WLANRxS < 0 {
		return nil, fmt.Errorf("sim: negative WLAN RX time")
	}
	if cfg.BufferCap < 0 {
		return nil, fmt.Errorf("sim: negative buffer capacity")
	}
	derate, err := sortedDerate(cfg.Derate)
	if err != nil {
		return nil, err
	}
	s := &Simulator{
		cfg:            cfg,
		badge:          cfg.Badge.Components(),
		mode:           ModeAwakeIdle,
		appliedOp:      cfg.Controller.Current(),
		buffer:         queue.NewBuffer(),
		curKind:        cfg.Kind,
		pendingArrival: -1,
		derate:         derate,
	}
	if sc := cfg.Scratch; sc != nil {
		// Recycle the previous run's allocations. The event heap is emptied,
		// energy accumulators are zeroed, and power vectors of the right
		// length are adopted as raw capacity: powerOK starts false for every
		// mode, so modePower rebuilds each vector before its first read.
		s.events = sc.events[:0]
		s.energyComp = resizeZero(sc.energy, len(s.badge))
		for m := range sc.power {
			if len(sc.power[m]) == len(s.badge) {
				s.powerVec[m] = sc.power[m]
			}
		}
	} else {
		s.energyComp = make([]float64, len(s.badge))
	}
	s.wlanIdx, s.sramIdx, s.dramIdx = -1, -1, -1
	for i, c := range s.badge {
		switch c.Name {
		case device.NameWLAN:
			s.wlanIdx = i
			s.wlanRxE = (c.Power(device.Active) - c.Power(device.Idle)) * cfg.WLANRxS
		case device.NameSRAM:
			s.sramIdx = i
			s.sramCoef = (c.Power(device.Active) - c.Power(device.Idle)) * perfmodel.MP3Curve().MemFraction
		case device.NameDRAM:
			s.dramIdx = i
			s.dramCoef = (c.Power(device.Active) - c.Power(device.Idle)) * perfmodel.MPEGCurve().MemFraction
		}
	}
	if cfg.Obs != nil {
		if s.tr = cfg.Obs.Tracer(); s.tr != nil {
			s.tr.SetClock(func() float64 { return s.now })
			if sc := cfg.Scratch; sc != nil {
				s.lastEnergy = resizeZero(sc.lastEnergy, len(s.badge))
			} else {
				s.lastEnergy = make([]float64, len(s.badge))
			}
		}
		if reg := cfg.Obs.Registry(); reg != nil {
			s.mDelay = reg.Histogram("sim.frame_delay_s", delayBuckets)
			s.opResidency = make(map[float64]float64, 8)
		}
	}
	return s, nil
}

// delayBuckets spans the paper's delay targets (0.1 s video, 0.15 s audio)
// with resolution on both sides of the constraint.
var delayBuckets = []float64{0.01, 0.02, 0.05, 0.1, 0.15, 0.2, 0.3, 0.5, 1, 2, 5}

// sortedDerate validates the derating windows and returns them sorted by
// start time.
func sortedDerate(windows []PowerDerate) ([]PowerDerate, error) {
	if len(windows) == 0 {
		return nil, nil
	}
	out := make([]PowerDerate, len(windows))
	copy(out, windows)
	sort.Slice(out, func(i, j int) bool { return out[i].StartS < out[j].StartS })
	for i, w := range out {
		if w.StartS < 0 || w.EndS <= w.StartS {
			return nil, fmt.Errorf("sim: derate window [%v, %v) is not a valid interval", w.StartS, w.EndS)
		}
		if w.Factor <= 0 {
			return nil, fmt.Errorf("sim: derate factor must be positive, got %v", w.Factor)
		}
		if i > 0 && w.StartS < out[i-1].EndS {
			return nil, fmt.Errorf("sim: derate windows [%v, %v) and [%v, %v) overlap",
				out[i-1].StartS, out[i-1].EndS, w.StartS, w.EndS)
		}
	}
	return out, nil
}

// setMode switches the operating mode, flushing the per-component energy
// accrued in the outgoing mode to the tracer first so every trace segment is
// attributed to the mode it was spent in. Callers must chargeTo the switch
// time before calling. With no tracer this is a plain assignment.
func (s *Simulator) setMode(m Mode) {
	if s.tr != nil && m != s.mode {
		s.emitEnergy()
	}
	s.mode = m
}

// emitEnergy emits one "energy" event carrying the per-component joules
// accrued since the previous energy event, labelled with the current mode.
// The sum of these deltas over a whole trace equals Result.EnergyByComponent.
func (s *Simulator) emitEnergy() {
	var deltas map[string]float64
	for i, e := range s.energyComp {
		if d := e - s.lastEnergy[i]; d != 0 {
			if deltas == nil {
				deltas = make(map[string]float64, len(s.badge))
			}
			deltas[s.badge[i].Name] = d
			s.lastEnergy[i] = e
		}
	}
	if deltas != nil {
		s.tr.Emit(obs.Event{T: s.now, Kind: "energy", Mode: s.mode.String(), Energy: deltas})
	}
}

// componentPower returns the component's draw in the current mode.
//
// Activity model: only the CPU, the decode memory (SRAM for audio, DRAM for
// video) and the FLASH scale with decode time — those are the components DVS
// legitimately trades off against. The display follows *playback* (on for
// the whole awake time of a video burst, dark for audio) and the WLAN
// follows *arrivals* (fixed RX energy per frame, charged in handleArrival,
// listening-idle otherwise), so neither is distorted by how slowly the CPU
// chooses to decode.
func (s *Simulator) componentPower(c device.Component) float64 {
	switch s.mode {
	case ModeDecode, ModeAwakeIdle:
		switch c.Name {
		case device.NameCPU:
			if s.mode == ModeDecode {
				return s.appliedOp.ActivePowerW
			}
			return c.Power(device.Idle)
		case device.NameSRAM, device.NameDRAM:
			// Data-memory access time is fixed per frame (the memory
			// fraction M of the full-speed decode time), so it is charged
			// as a per-frame lump in handleDecodeDone; here the memory
			// draws its idle power.
			return c.Power(device.Idle)
		case device.NameFlash:
			if s.mode == ModeDecode {
				return c.Power(device.Active)
			}
			return c.Power(device.Idle)
		case device.NameDisplay:
			if s.curKind == workload.MPEG {
				return c.Power(device.Active)
			}
			return c.Power(device.Idle)
		default: // WLAN: listening; per-frame RX bursts are charged separately
			return c.Power(device.Idle)
		}
	case ModeSleep:
		return c.Power(s.sleepState)
	case ModeWake:
		// Everything powers up in parallel; nothing useful runs. The CPU
		// comes up at the point it will decode at.
		if c.Name == device.NameCPU {
			return s.appliedOp.ActivePowerW
		}
		return c.Power(device.Active)
	default:
		internalf("bad mode %v", s.mode)
		return 0 // unreachable
	}
}

// modePower returns the cached per-component power vector for the current
// mode, rebuilding it only when an input it depends on changed since the
// last rebuild (see powerOK).
func (s *Simulator) modePower() []float64 {
	m := s.mode
	if !s.powerOK[m] {
		pv := s.powerVec[m]
		if pv == nil {
			pv = make([]float64, len(s.badge))
			s.powerVec[m] = pv
		}
		for i, c := range s.badge {
			pv[i] = s.componentPower(c)
		}
		s.powerOK[m] = true
	}
	return s.powerVec[m]
}

// chargeTo integrates energy from s.now to t in the current mode: a dot
// product of the cached power vector with dt, accumulated into the
// index-addressed per-component totals (no map writes, no per-component
// state dispatch on the hot path).
func (s *Simulator) chargeTo(t float64) {
	dt := t - s.now
	if dt < 0 {
		internalf("time went backwards: %v -> %v", s.now, t)
	}
	if dt > 0 {
		s.recordSpan(s.now, t)
		pv := s.modePower()
		// Under a voltage-sag derating window the same power vector costs
		// more input energy; fold the overlap into an effective duration so
		// the hot loop below stays a plain dot product.
		edt := dt
		if len(s.derate) > 0 {
			edt += s.derateExtra(s.now, t)
		}
		for i, p := range pv {
			e := p * edt
			s.energyComp[i] += e
			s.res.EnergyJ += e
			s.res.EnergyByMode[s.mode] += e
		}
		s.res.TimeInMode[s.mode] += dt
		s.res.QueueLen.Add(float64(s.buffer.Len()), dt)
		if s.mode == ModeDecode {
			s.res.FreqTime.Add(s.appliedOp.FrequencyMHz, dt)
			if s.opResidency != nil {
				s.opResidency[s.appliedOp.FrequencyMHz] += dt
			}
		}
	}
	s.now = t
}

// derateExtra returns the additional effective integration time contributed
// by derating windows overlapping [t0, t1]: for each overlap of length d with
// factor f, the energy surcharge equals power x d x (f-1).
func (s *Simulator) derateExtra(t0, t1 float64) float64 {
	extra := 0.0
	for _, w := range s.derate {
		if w.EndS <= t0 {
			continue
		}
		if w.StartS >= t1 {
			break // sorted by start: no later window overlaps either
		}
		lo, hi := w.StartS, w.EndS
		if lo < t0 {
			lo = t0
		}
		if hi > t1 {
			hi = t1
		}
		extra += (w.Factor - 1) * (hi - lo)
	}
	return extra
}

// derateFactorAt returns the derating factor in force at time tm (1 outside
// every window) — applied to the instantaneous per-event energy lumps (WLAN
// RX bursts, data-memory access).
func (s *Simulator) derateFactorAt(tm float64) float64 {
	for _, w := range s.derate {
		if tm < w.StartS {
			break
		}
		if tm < w.EndS {
			return w.Factor
		}
	}
	return 1
}

func (s *Simulator) push(e event) {
	s.seq++
	e.seq = s.seq
	s.events.push(e)
}

// scheduleNextArrival queues the next trace frame, if any, and keeps the
// tracked pendingArrival time in sync.
func (s *Simulator) scheduleNextArrival() {
	if s.nextFrame < len(s.cfg.Trace.Frames) {
		t := s.cfg.Trace.Frames[s.nextFrame].Arrival
		s.push(event{time: t, kind: evArrival, frame: s.nextFrame})
		s.pendingArrival = t
		s.nextFrame++
	} else {
		s.pendingArrival = -1
	}
}

// startDecodeIfPossible begins decoding the head-of-line frame when the
// device is awake and the decoder is free.
func (s *Simulator) startDecodeIfPossible() {
	if s.decoding || s.buffer.Empty() || s.mode == ModeSleep || s.mode == ModeWake {
		return
	}
	f := s.buffer.Peek()
	// Apply any pending operating-point change at the frame boundary.
	target := s.cfg.Controller.Current()
	if s.cfg.QueuePolicy != nil {
		target = s.cfg.QueuePolicy.OperatingPointFor(s.buffer.Len())
	}
	if s.cfg.Guard.Engaged() {
		// Watchdog safe mode: decode flat out until the backlog clears.
		target = s.cfg.Proc.Max()
	}
	extra := 0.0
	if target != s.appliedOp {
		if s.tr != nil {
			s.tr.Emit(obs.Event{T: s.now, Kind: "op_change",
				FromMHz: s.appliedOp.FrequencyMHz, ToMHz: target.FrequencyMHz})
		}
		s.appliedOp = target
		s.powerOK[ModeDecode] = false
		s.powerOK[ModeWake] = false
		extra = s.cfg.Proc.SwitchLatency()
		s.res.Reconfigurations++
	}
	perf := s.cfg.Controller.Curve.PerfRatio(s.appliedOp.FrequencyMHz / s.cfg.Proc.Max().FrequencyMHz)
	if perf <= 0 {
		internalf("zero performance at selected operating point (%g MHz)", s.appliedOp.FrequencyMHz)
	}
	s.setMode(ModeDecode)
	s.decoding = true
	if s.tr != nil {
		s.tr.Emit(obs.Event{T: s.now, Kind: "decode_start", Frame: f.Seq + 1,
			Queue: s.buffer.Len(), ToMHz: s.appliedOp.FrequencyMHz})
	}
	s.push(event{time: s.now + extra + f.Work/perf, kind: evDecodeDone, frame: f.Seq})
}

// enterIdle handles the transition into the idle state: the paper's single
// DPM decision point.
func (s *Simulator) enterIdle() {
	s.setMode(ModeAwakeIdle)
	if s.tr != nil {
		s.tr.Emit(obs.Event{T: s.now, Kind: "idle_enter", Queue: s.buffer.Len()})
	}
	s.idleSince = s.now
	s.epoch++
	next := s.peekNextArrivalTime()
	if next < 0 {
		return // no more arrivals: the run is draining, never sleep
	}
	// Oracle information: the true length of the idle period just starting.
	dec := s.cfg.DPM.Decide(next - s.now)
	if dec.Sleep {
		s.push(event{time: s.now + dec.Timeout, kind: evSleepTimer, epoch: s.epoch, target: dec.Target})
		if dec.DeepenAfter > 0 {
			s.push(event{
				time:   s.now + dec.Timeout + dec.DeepenAfter,
				kind:   evDeepenTimer,
				epoch:  s.epoch,
				target: dec.DeepenTarget,
			})
		}
	}
}

// peekNextArrivalTime returns the next pending arrival's time or -1 when the
// trace is exhausted. The time is tracked in scheduleNextArrival/Run rather
// than found by scanning the heap, so idle entry is O(1).
func (s *Simulator) peekNextArrivalTime() float64 {
	return s.pendingArrival
}

// Run executes the simulation to completion and returns the result. A
// violated internal invariant surfaces as a wrapped *InternalError rather
// than a panic (see InternalError); any other panic propagates unchanged.
func (s *Simulator) Run() (_ *Result, err error) {
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		ie, ok := r.(*InternalError)
		if !ok {
			panic(r)
		}
		err = fmt.Errorf("sim: run aborted at t=%.6f: %w", s.now, ie)
	}()
	if s.nextFrame != 0 || s.now != 0 {
		return nil, fmt.Errorf("sim: Run may only be called once")
	}
	s.scheduleNextArrival()
	s.enterIdle()
	frames := s.cfg.Trace.Frames
	for s.events.Len() > 0 {
		e := s.events.pop()
		switch e.kind {
		case evArrival:
			s.chargeTo(e.time)
			// This arrival is leaving the heap; scheduleNextArrival below
			// re-establishes the tracked pending time (or -1 at trace end).
			s.pendingArrival = -1
			f := frames[e.frame]
			s.handleArrival(f)
			s.scheduleNextArrival()
		case evDecodeDone:
			s.chargeTo(e.time)
			s.handleDecodeDone(frames[e.frame])
		case evSleepTimer:
			if e.epoch != s.epoch || s.mode != ModeAwakeIdle {
				continue // stale: activity resumed before the timeout
			}
			s.chargeTo(e.time)
			s.setMode(ModeSleep)
			s.setSleepState(e.target)
			s.res.Sleeps++
			if s.tr != nil {
				s.tr.Emit(obs.Event{T: s.now, Kind: "sleep", Target: e.target.String()})
			}
		case evDeepenTimer:
			if e.epoch != s.epoch || s.mode != ModeSleep {
				continue // stale: the badge woke (or never slept)
			}
			s.chargeTo(e.time)
			if s.tr != nil {
				// The sleep-state power changes here: flush the energy accrued
				// in the shallower state before deepening.
				s.emitEnergy()
				s.tr.Emit(obs.Event{T: s.now, Kind: "deepen", Target: e.target.String()})
			}
			s.setSleepState(e.target)
			s.res.Deepens++
		case evWakeDone:
			s.chargeTo(e.time)
			s.setMode(ModeAwakeIdle)
			if s.tr != nil {
				s.tr.Emit(obs.Event{T: s.now, Kind: "wake_done", Queue: s.buffer.Len()})
			}
			s.startDecodeIfPossible()
		}
	}
	s.res.SimTime = s.now
	if s.now > 0 {
		s.res.AvgPowerW = s.res.EnergyJ / s.now
	}
	// Materialise the per-component energy map once, from the hot-path
	// index-addressed accumulator.
	s.res.EnergyByComponent = make(map[string]float64, len(s.badge))
	for i, c := range s.badge {
		s.res.EnergyByComponent[c.Name] = s.energyComp[i]
	}
	s.res.PeakQueue = s.buffer.Peak()
	if s.cfg.Guard != nil {
		st := s.cfg.Guard.Stats(s.now)
		s.res.GuardTrips = st.Trips
		s.res.GuardEngagedS = st.EngagedS
	}
	if s.res.FramesDecoded+s.res.FramesDropped != len(frames) {
		return nil, fmt.Errorf("sim: decoded %d + dropped %d of %d frames",
			s.res.FramesDecoded, s.res.FramesDropped, len(frames))
	}
	if s.tr != nil {
		s.emitEnergy() // flush the final mode's residue
		s.tr.Emit(obs.Event{T: s.now, Kind: "run_end", Value: s.res.EnergyJ})
	}
	s.publishMetrics()
	if sc := s.cfg.Scratch; sc != nil {
		// Hand the (possibly grown) buffers back so the next run on this
		// scratch starts from their high-water capacity.
		sc.events = s.events
		sc.energy = s.energyComp
		sc.lastEnergy = s.lastEnergy
		sc.power = s.powerVec
	}
	return &s.res, nil
}

// publishMetrics materialises the run's headline numbers into the metrics
// registry: the quantities the paper's tables report (per-component energy,
// per-mode time and energy, QoS counters) plus operating-point residency.
// Called once at the end of Run; no-op without a registry.
func (s *Simulator) publishMetrics() {
	reg := s.cfg.Obs.Registry()
	if reg == nil {
		return
	}
	reg.Counter("sim.frames_decoded").Add(float64(s.res.FramesDecoded))
	reg.Counter("sim.frames_dropped").Add(float64(s.res.FramesDropped))
	reg.Counter("sim.reconfigurations").Add(float64(s.res.Reconfigurations))
	reg.Counter("sim.sleeps").Add(float64(s.res.Sleeps))
	reg.Counter("sim.deepens").Add(float64(s.res.Deepens))
	reg.Counter("sim.delay_over_target").Add(float64(s.res.DelayOverTarget))
	reg.Counter("sim.delay_over_2x_target").Add(float64(s.res.DelayOver2xTarget))
	reg.Gauge("sim.energy_total_j").Set(s.res.EnergyJ)
	reg.Gauge("sim.sim_time_s").Set(s.res.SimTime)
	reg.Gauge("sim.avg_power_w").Set(s.res.AvgPowerW)
	reg.Gauge("sim.mean_queue_len").Set(s.res.QueueLen.Mean())
	reg.Gauge("sim.peak_queue_len").Set(float64(s.res.PeakQueue))
	reg.Gauge("sim.mean_decode_mhz").Set(s.res.FreqTime.Mean())
	if s.cfg.Guard != nil {
		reg.Gauge("sim.guard_trips").Set(float64(s.res.GuardTrips))
		reg.Gauge("sim.guard_engaged_s").Set(s.res.GuardEngagedS)
	}
	for i, c := range s.badge {
		//lint:allow obscheck one-shot end-of-run publication, names vary per component
		reg.Gauge("sim.energy_j." + c.Name).Set(s.energyComp[i])
	}
	for m := ModeDecode; m < numModes; m++ {
		//lint:allow obscheck one-shot end-of-run publication, names vary per mode
		reg.Gauge("sim.time_in_mode_s." + m.String()).Set(s.res.TimeInMode[m])
		//lint:allow obscheck one-shot end-of-run publication, names vary per mode
		reg.Gauge("sim.energy_by_mode_j." + m.String()).Set(s.res.EnergyByMode[m])
	}
	// Publish residency in ascending operating-point order so registration
	// order (and any future ordered consumer) is independent of map order.
	points := make([]float64, 0, len(s.opResidency))
	for mhz := range s.opResidency {
		points = append(points, mhz)
	}
	sort.Float64s(points)
	for _, mhz := range points {
		//lint:allow obscheck one-shot end-of-run publication, names vary per operating point
		reg.Gauge(fmt.Sprintf("sim.op_residency_s.%gmhz", mhz)).Set(s.opResidency[mhz])
	}
}

// setSleepState updates the low-power state, invalidating the sleep-mode
// power vector when it actually changes.
func (s *Simulator) setSleepState(st device.PowerState) {
	if st != s.sleepState {
		s.sleepState = st
		s.powerOK[ModeSleep] = false
	}
}

// setCurKind updates the streaming application kind, invalidating the power
// vectors that depend on it (display activity in decode and awake-idle).
func (s *Simulator) setCurKind(k workload.Kind) {
	if k != s.curKind {
		s.curKind = k
		s.powerOK[ModeDecode] = false
		s.powerOK[ModeAwakeIdle] = false
	}
}

func (s *Simulator) handleArrival(f workload.TraceFrame) {
	// Feed the arrival estimator, unless this gap spans an idle period.
	if s.haveArrive {
		gap := f.Arrival - s.lastArrive
		spansIdle := s.mode == ModeSleep || s.mode == ModeWake ||
			(s.mode == ModeAwakeIdle && !s.decoding && s.buffer.Empty() && gap > s.cfg.IdleResetGap)
		if !spansIdle {
			s.cfg.Controller.OnArrival(gap, f.TrueArrivalRate)
		}
	}
	s.lastArrive = f.Arrival
	s.haveArrive = true
	if clips := s.cfg.Trace.Clips; len(clips) > 0 && f.ClipIndex < len(clips) {
		s.setCurKind(clips[f.ClipIndex].Kind)
	}
	// The radio's RX burst for this frame (see Config.WLANRxS).
	if s.wlanIdx >= 0 {
		rxE := s.wlanRxE
		if len(s.derate) > 0 {
			rxE *= s.derateFactorAt(s.now)
		}
		s.energyComp[s.wlanIdx] += rxE
		s.res.EnergyJ += rxE
		s.res.EnergyByMode[s.mode] += rxE
	}

	if s.cfg.BufferCap > 0 && s.buffer.Len() >= s.cfg.BufferCap {
		// Frame buffer full: the frame is lost. The power manager still saw
		// the arrival (fed to the estimator above) and the radio still
		// received it; only the payload drops. The arrival still counts as
		// activity, so a sleeping device wakes below.
		s.res.FramesDropped++
		if s.tr != nil {
			s.tr.Emit(obs.Event{T: s.now, Kind: "drop", Frame: f.Seq + 1, Queue: s.buffer.Len()})
		}
	} else {
		s.buffer.Push(queue.Frame{Seq: f.Seq, ArrivalTime: f.Arrival, Work: f.Work, ClipID: f.ClipIndex})
		if s.tr != nil {
			s.tr.Emit(obs.Event{T: s.now, Kind: "arrival", Frame: f.Seq + 1, Queue: s.buffer.Len()})
		}
	}
	if s.cfg.Guard != nil {
		s.cfg.Guard.ObserveQueue(s.now, s.buffer.Len())
		s.cfg.Guard.ObserveDemand(s.now, s.cfg.Controller.DemandRatio())
	}

	switch s.mode {
	case ModeSleep:
		// Wake up: the DPM observes the completed idle period.
		s.cfg.DPM.ObserveIdle(s.now - s.idleSince)
		s.epoch++
		wake := s.cfg.Badge.WakeLatency(s.sleepState)
		slept := s.sleepState
		s.setMode(ModeWake)
		if s.tr != nil {
			s.tr.Emit(obs.Event{T: s.now, Kind: "wake", Target: slept.String(), DelayS: wake})
		}
		s.push(event{time: s.now + wake, kind: evWakeDone})
	case ModeAwakeIdle:
		if !s.decoding {
			s.cfg.DPM.ObserveIdle(s.now - s.idleSince)
			s.epoch++ // cancel any pending sleep timer
		}
		s.startDecodeIfPossible()
	case ModeWake, ModeDecode:
		// Buffer and keep going.
	}
}

func (s *Simulator) handleDecodeDone(f workload.TraceFrame) {
	done := s.buffer.Pop()
	if done.Seq != f.Seq {
		internalf("decode completion order mismatch: %d vs %d", done.Seq, f.Seq)
	}
	s.decoding = false
	s.res.FramesDecoded++
	delay := s.now - done.ArrivalTime
	s.res.FrameDelay.Add(delay)
	s.mDelay.Observe(delay)
	if s.tr != nil {
		s.tr.Emit(obs.Event{T: s.now, Kind: "decode_done", Frame: f.Seq + 1,
			Queue: s.buffer.Len(), DelayS: delay})
	}
	if target := s.cfg.Controller.TargetDelay; delay > target {
		s.res.DelayOverTarget++
		if delay > 2*target {
			s.res.DelayOver2xTarget++
		}
	}
	// Charge the frame's data-memory activity: the access time is the memory
	// fraction of the frame's full-speed decode time, independent of the
	// clock the frame actually decoded at. The coefficient (power delta ×
	// memory fraction) is precomputed per kind in New.
	memIdx, memCoef := s.sramIdx, s.sramCoef
	if s.curKind == workload.MPEG {
		memIdx, memCoef = s.dramIdx, s.dramCoef
	}
	if memIdx >= 0 {
		memE := memCoef * f.Work
		if len(s.derate) > 0 {
			memE *= s.derateFactorAt(s.now)
		}
		s.energyComp[memIdx] += memE
		s.res.EnergyJ += memE
		s.res.EnergyByMode[ModeDecode] += memE
	}
	// Feed the service estimator with the decode time normalised to the
	// maximum frequency (the PM knows the current point's performance ratio).
	s.cfg.Controller.OnService(f.Work, f.TrueDecodeRateMax)
	if s.cfg.Guard != nil {
		s.cfg.Guard.ObserveQueue(s.now, s.buffer.Len())
		s.cfg.Guard.ObserveDemand(s.now, s.cfg.Controller.DemandRatio())
	}
	if s.buffer.Empty() {
		s.enterIdle()
		return
	}
	s.setMode(ModeAwakeIdle)
	s.startDecodeIfPossible()
}

// Run is a convenience wrapper: build and execute in one call.
func Run(cfg Config) (*Result, error) {
	s, err := New(cfg)
	if err != nil {
		return nil, err
	}
	return s.Run()
}
