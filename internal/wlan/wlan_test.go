package wlan

import (
	"math"
	"testing"

	"smartbadge/internal/stats"
)

func TestConfigValidation(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	mutations := []func(*Config){
		func(c *Config) { c.FrameRate = 0 },
		func(c *Config) { c.TxTime = 0 },
		func(c *Config) { c.LossProb = -0.1 },
		func(c *Config) { c.LossProb = 1 },
		func(c *Config) { c.RetryTimeout = -1 },
		func(c *Config) { c.CrossBusyRate = -1 },
		func(c *Config) { c.CrossBusyRate = 5; c.CrossBusyMean = 0 },
		func(c *Config) { c.CrossBusyRate = 50; c.CrossBusyMean = 0.05 }, // saturated
	}
	for i, mutate := range mutations {
		cfg := DefaultConfig()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("mutation %d: expected error", i)
		}
	}
}

func TestStreamBasics(t *testing.T) {
	rng := stats.NewRNG(1)
	arr, err := Stream(rng, DefaultConfig(), 5000)
	if err != nil {
		t.Fatal(err)
	}
	if len(arr) != 5000 {
		t.Fatalf("got %d arrivals", len(arr))
	}
	prev := 0.0
	for i, a := range arr {
		if a <= prev {
			t.Fatalf("arrival %d not increasing: %v <= %v", i, a, prev)
		}
		prev = a
	}
	if _, err := Stream(rng, DefaultConfig(), 0); err == nil {
		t.Error("zero frames accepted")
	}
	bad := DefaultConfig()
	bad.FrameRate = 0
	if _, err := Stream(rng, bad, 10); err == nil {
		t.Error("invalid config accepted")
	}
}

// Long-run delivery rate equals the pacing rate (nothing is ever dropped,
// only delayed).
func TestStreamPreservesRate(t *testing.T) {
	rng := stats.NewRNG(2)
	cfg := DefaultConfig()
	const n = 20000
	arr, err := Stream(rng, cfg, n)
	if err != nil {
		t.Fatal(err)
	}
	rate := float64(n) / arr[n-1]
	if math.Abs(rate-cfg.FrameRate)/cfg.FrameRate > 0.02 {
		t.Errorf("delivery rate = %v, want ~%v", rate, cfg.FrameRate)
	}
}

// A clean channel (no loss, no cross-traffic) delivers paced frames: tiny
// interarrival variance. A contended channel randomises them: CV near 1.
func TestChannelContentionRandomisesArrivals(t *testing.T) {
	clean := DefaultConfig()
	clean.LossProb = 0
	clean.CrossBusyRate = 0
	cleanArr, err := Stream(stats.NewRNG(3), clean, 5000)
	if err != nil {
		t.Fatal(err)
	}
	var cleanM stats.Moments
	for _, g := range Interarrivals(cleanArr)[1:] {
		cleanM.Add(g)
	}
	if cv := cleanM.StdDev() / cleanM.Mean(); cv > 0.05 {
		t.Errorf("clean channel CV = %v, want ~0 (paced)", cv)
	}

	contended, err := Stream(stats.NewRNG(3), DefaultConfig(), 5000)
	if err != nil {
		t.Fatal(err)
	}
	var contM stats.Moments
	for _, g := range Interarrivals(contended)[1:] {
		contM.Add(g)
	}
	if cv := contM.StdDev() / contM.Mean(); cv < 0.5 {
		t.Errorf("contended channel CV = %v, want > 0.5 (randomised)", cv)
	}
}

// The Figure 6 premise: the contended channel's interarrivals fit an
// exponential to within roughly the paper's 8 % mean CDF error.
func TestExponentialFitError(t *testing.T) {
	arr, err := Stream(stats.NewRNG(4), DefaultConfig(), 8000)
	if err != nil {
		t.Fatal(err)
	}
	gaps := Interarrivals(arr)[1:]
	fit, err := stats.FitExponential(gaps)
	if err != nil {
		t.Fatal(err)
	}
	e := stats.NewECDF(gaps)
	errFit := e.MeanAbsError(fit)
	if errFit > 0.15 {
		t.Errorf("exponential fit error = %v, want within ~the paper's band", errFit)
	}
	// The fitted rate tracks the pacing rate.
	if math.Abs(fit.Rate-20)/20 > 0.05 {
		t.Errorf("fitted rate = %v, want ~20", fit.Rate)
	}
}

func TestStreamDeterministic(t *testing.T) {
	a, _ := Stream(stats.NewRNG(7), DefaultConfig(), 1000)
	b, _ := Stream(stats.NewRNG(7), DefaultConfig(), 1000)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("arrival %d differs", i)
		}
	}
}

func TestInterarrivals(t *testing.T) {
	gaps := Interarrivals([]float64{1, 3, 6})
	want := []float64{1, 2, 3}
	for i := range want {
		if gaps[i] != want[i] {
			t.Errorf("gap %d = %v, want %v", i, gaps[i], want[i])
		}
	}
}

func TestStreamWithoutCrossTraffic(t *testing.T) {
	// A contention-free, lossless channel delivers frames at exactly the
	// pacing rate plus one airtime — the degenerate path where the lazy
	// cross-traffic generator must never be consulted.
	cfg := DefaultConfig()
	cfg.CrossBusyRate = 0
	cfg.CrossBusyMean = 0
	cfg.LossProb = 0
	arr, err := Stream(stats.NewRNG(1), cfg, 100)
	if err != nil {
		t.Fatal(err)
	}
	for i, a := range arr {
		want := float64(i)/cfg.FrameRate + cfg.TxTime
		if math.Abs(a-want) > 1e-12 {
			t.Fatalf("arrival %d = %v, want %v", i, a, want)
		}
	}
}

func TestStreamErrorPaths(t *testing.T) {
	rng := stats.NewRNG(1)
	if _, err := Stream(rng, DefaultConfig(), -5); err == nil {
		t.Error("negative frame count accepted")
	}
	cases := []func(*Config){
		func(c *Config) { c.TxTime = -1 },
		func(c *Config) { c.FrameRate = -1 },
		func(c *Config) { c.CrossBusyMean = -1 },
		func(c *Config) { c.LossProb = 2 },
	}
	for i, mutate := range cases {
		cfg := DefaultConfig()
		mutate(&cfg)
		if _, err := Stream(rng, cfg, 10); err == nil {
			t.Errorf("case %d: invalid config accepted by Stream", i)
		}
	}
}

func TestInterarrivalsEmpty(t *testing.T) {
	if out := Interarrivals(nil); len(out) != 0 {
		t.Errorf("empty arrivals produced %v", out)
	}
	if out := Interarrivals([]float64{2.5}); len(out) != 1 || out[0] != 2.5 {
		t.Errorf("single arrival gaps = %v", out)
	}
}
