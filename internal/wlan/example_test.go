package wlan_test

import (
	"fmt"
	"log"

	"smartbadge/internal/stats"
	"smartbadge/internal/wlan"
)

// Stream frames through the contended channel and fit an exponential to the
// resulting interarrival times — the Figure 6 experiment in miniature.
func Example() {
	arrivals, err := wlan.Stream(stats.NewRNG(4), wlan.DefaultConfig(), 8000)
	if err != nil {
		log.Fatal(err)
	}
	gaps := wlan.Interarrivals(arrivals)[1:]
	fit, err := stats.FitExponential(gaps)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fitted rate ~%.0f fr/s (server paces 20 fr/s)\n", fit.Rate)
	// Output:
	// fitted rate ~20 fr/s (server paces 20 fr/s)
}
