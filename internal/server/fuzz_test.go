package server

import (
	"testing"
)

// FuzzDecodeFleetRequest drives arbitrary bytes through the exact pipeline
// a /v1/fleet body takes — strict decode, limit validation, spec lowering —
// and pins the idempotency layer's load-bearing invariant: once a request
// survives parseFleetConfig, its canonical Hash (the dedup scope) must
// never fail. A panic anywhere in the pipeline is a crash a remote caller
// could trigger with one POST.
func FuzzDecodeFleetRequest(f *testing.F) {
	f.Add([]byte(`{"badges":3,"seed":7,"apps":["mp3"],"policies":["expavg"],"dpms":["none"]}`))
	f.Add([]byte(`{"badges":1,"seed":0}`))
	f.Add([]byte(`{"badges":-1}`))
	f.Add([]byte(`{"badges":1e9,"workers":-5}`))
	f.Add([]byte(`{"badges":2,"policies":["nosuch"]}`))
	f.Add([]byte(`{`))
	f.Add([]byte(``))
	f.Add([]byte(`[]`))
	f.Add([]byte(`{"badges":2,"timeout_ms":-1}`))
	s := New(Config{})
	f.Fuzz(func(t *testing.T, data []byte) {
		var req FleetRequest
		if err := decodeBytes(data, &req); err != nil {
			return // malformed JSON is rejected, not crashed on
		}
		cfg, err := s.parseFleetConfig(req)
		if err != nil {
			return // invalid configs are rejected, not crashed on
		}
		if _, err := cfg.Hash(); err != nil {
			t.Fatalf("validated config failed to hash (idempotency scope would 500): %v", err)
		}
	})
}
