package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"smartbadge/internal/fleet"
)

// smallFleetBody is a real-engine request cheap enough for tests: ExpAvg
// badges need no threshold characterisation.
const smallFleetBody = `{"badges":3,"seed":7,"apps":["mp3"],"policies":["expavg"],"dpms":["none"]}`

func post(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

func postRecorder(s *Server, path, body string) *httptest.ResponseRecorder {
	rec := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
	s.Handler().ServeHTTP(rec, req)
	return rec
}

// waitFor polls until cond holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// blockingEngine returns a fleet runner that parks until release is closed
// (or the context dies), standing in for a long batch without burning CPU.
func blockingEngine(release <-chan struct{}) func(ctx context.Context, cfg fleet.Config) (*fleet.Report, error) {
	return func(ctx context.Context, cfg fleet.Config) (*fleet.Report, error) {
		select {
		case <-release:
			return &fleet.Report{Badges: []fleet.BadgeResult{{Spec: cfg.SpecFor(0)}}}, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// TestDeadlineExceededMidBatch: a request whose deadline expires while the
// engine is mid-batch must return promptly with a cancelled status, well
// before the batch would have finished.
func TestDeadlineExceededMidBatch(t *testing.T) {
	s := New(Config{})
	s.runFleet = blockingEngine(make(chan struct{})) // never released: only ctx can end it
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	start := time.Now()
	resp, body := post(t, ts.URL+"/v1/fleet", `{"badges":4,"seed":1,"timeout_ms":100}`)
	elapsed := time.Since(start)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	var e errorResponse
	if err := json.Unmarshal(body, &e); err != nil || e.Status != "cancelled" {
		t.Fatalf("body = %s, want status cancelled", body)
	}
	if elapsed > 2*time.Second {
		t.Errorf("cancelled response took %v, want prompt return after the 100 ms deadline", elapsed)
	}
	if s.cCanceled.Value() == 0 {
		t.Error("cancelled counter not incremented")
	}
}

// TestDeadlineExceededRealEngine drives the acceptance criterion end to end:
// a 200 ms deadline against a batch that takes multiple seconds returns
// promptly because the shard loops abort between badges.
func TestDeadlineExceededRealEngine(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real batch")
	}
	s := New(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	start := time.Now()
	resp, body := post(t, ts.URL+"/v1/fleet",
		`{"badges":512,"seed":7,"apps":["mp3"],"policies":["expavg"],"dpms":["none"],"timeout_ms":200}`)
	elapsed := time.Since(start)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	if !bytes.Contains(body, []byte(`"cancelled"`)) {
		t.Fatalf("body = %s", body)
	}
	// Abort latency is the deadline plus at most a handful of in-flight
	// badges (each a few ms); seconds would mean cancellation only happened
	// at batch end.
	if elapsed > 3*time.Second {
		t.Errorf("cancelled response took %v, want deadline + one badge, not the whole batch", elapsed)
	}
}

// TestQueueFullSheds: with one execution slot and a one-deep queue, a third
// concurrent request is shed with 429 + Retry-After while the first two
// eventually succeed.
func TestQueueFullSheds(t *testing.T) {
	release := make(chan struct{})
	s := New(Config{MaxInFlight: 1, QueueDepth: 1, RetryAfterS: 7})
	s.runFleet = blockingEngine(release)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	type result struct {
		code int
		body []byte
	}
	results := make(chan result, 2)
	for i := 0; i < 2; i++ {
		go func() {
			resp, body := post(t, ts.URL+"/v1/fleet", `{"badges":1,"seed":1}`)
			results <- result{resp.StatusCode, body}
		}()
	}
	waitFor(t, "one running + one queued", func() bool {
		return s.inflight.Load() == 1 && s.waiting.Load() == 1
	})

	resp, body := post(t, ts.URL+"/v1/fleet", `{"badges":1,"seed":1}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("third request: status = %d, body %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("Retry-After"); got != "7" {
		t.Errorf("Retry-After = %q, want 7", got)
	}
	var e errorResponse
	if err := json.Unmarshal(body, &e); err != nil || e.Status != "shed" {
		t.Errorf("shed body = %s", body)
	}

	close(release)
	for i := 0; i < 2; i++ {
		r := <-results
		if r.code != http.StatusOK {
			t.Errorf("queued request %d: status = %d, body %s", i, r.code, r.body)
		}
	}
	if s.cShed.Value() != 1 {
		t.Errorf("shed counter = %v, want 1", s.cShed.Value())
	}
}

// TestGracefulShutdownDrains: Shutdown must wait for the in-flight request
// to complete (and that request must succeed), while /healthz flips to
// draining.
func TestGracefulShutdownDrains(t *testing.T) {
	release := make(chan struct{})
	s := New(Config{})
	s.runFleet = blockingEngine(release)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- s.Serve(l) }()
	base := "http://" + l.Addr().String()

	reqDone := make(chan result2, 1)
	go func() {
		resp, err := http.Post(base+"/v1/fleet", "application/json", strings.NewReader(`{"badges":1,"seed":1}`))
		if err != nil {
			reqDone <- result2{err: err}
			return
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		reqDone <- result2{code: resp.StatusCode, body: body}
	}()
	waitFor(t, "request in flight", func() bool { return s.inflight.Load() == 1 })

	shutDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutDone <- s.Shutdown(ctx)
	}()
	waitFor(t, "draining flag", func() bool { return s.draining.Load() })
	select {
	case err := <-shutDone:
		t.Fatalf("Shutdown returned (%v) while a request was in flight", err)
	case <-time.After(50 * time.Millisecond):
	}

	close(release)
	if err := <-shutDone; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	r := <-reqDone
	if r.err != nil || r.code != http.StatusOK {
		t.Fatalf("in-flight request: code=%d err=%v body=%s", r.code, r.err, r.body)
	}
	if err := <-serveErr; !errors.Is(err, http.ErrServerClosed) {
		t.Fatalf("Serve returned %v, want http.ErrServerClosed", err)
	}
}

type result2 struct {
	code int
	body []byte
	err  error
}

// TestDrainingRejectsNewWork: once draining, engine endpoints answer 503.
func TestDrainingRejectsNewWork(t *testing.T) {
	s := New(Config{})
	s.draining.Store(true)
	rec := postRecorder(s, "/v1/fleet", smallFleetBody)
	if rec.Code != http.StatusServiceUnavailable {
		t.Errorf("fleet while draining: %d", rec.Code)
	}
	hrec := httptest.NewRecorder()
	s.Handler().ServeHTTP(hrec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if hrec.Code != http.StatusServiceUnavailable || !bytes.Contains(hrec.Body.Bytes(), []byte("draining")) {
		t.Errorf("healthz while draining: %d %s", hrec.Code, hrec.Body.String())
	}
}

// TestConcurrentIdenticalRequestsByteIdentical is the serving determinism
// contract: the same body, eight ways at once against the real engine, must
// produce byte-identical 200 responses.
func TestConcurrentIdenticalRequestsByteIdentical(t *testing.T) {
	s := New(Config{MaxInFlight: 4})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const n = 8
	bodies := make([][]byte, n)
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/fleet", "application/json", strings.NewReader(smallFleetBody))
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			b, err := io.ReadAll(resp.Body)
			if err != nil {
				t.Error(err)
				return
			}
			if resp.StatusCode != http.StatusOK {
				t.Errorf("request %d: status %d body %s", i, resp.StatusCode, b)
				return
			}
			bodies[i] = b
		}(i)
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if !bytes.Equal(bodies[0], bodies[i]) {
			t.Fatalf("response %d differs from response 0:\n%s\nvs\n%s", i, bodies[i], bodies[0])
		}
	}
	var fr FleetResponse
	if err := json.Unmarshal(bodies[0], &fr); err != nil {
		t.Fatal(err)
	}
	if fr.Status != "ok" || fr.Agg.Runs != 3 || len(fr.Badges) != 3 {
		t.Errorf("unexpected response shape: %+v", fr)
	}
	if fr.Badges[0].Policy != "expavg" || fr.Badges[0].EnergyJ <= 0 {
		t.Errorf("badge 0 = %+v", fr.Badges[0])
	}
}

// TestRunEndpoint exercises /v1/run against the real engine and checks the
// single-badge response matches a one-badge fleet request.
func TestRunEndpoint(t *testing.T) {
	s := New(Config{})
	rec := postRecorder(s, "/v1/run", `{"app":"mp3","policy":"expavg","dpm":"none","seed":7}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	var rr RunResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &rr); err != nil {
		t.Fatal(err)
	}
	if rr.Badge.App != "mp3" || rr.Badge.Policy != "expavg" || rr.Badge.EnergyJ <= 0 {
		t.Errorf("badge = %+v", rr.Badge)
	}
	frec := postRecorder(s, "/v1/fleet", `{"badges":1,"seed":7,"apps":["mp3"],"policies":["expavg"],"dpms":["none"],"workers":1}`)
	var fr FleetResponse
	if err := json.Unmarshal(frec.Body.Bytes(), &fr); err != nil {
		t.Fatal(err)
	}
	if fr.Badges[0] != rr.Badge {
		t.Errorf("/v1/run badge %+v != one-badge fleet %+v", rr.Badge, fr.Badges[0])
	}
}

// TestThresholdsEndpoint: a small real characterisation, repeated — the
// second serve comes from cache and must be byte-identical.
func TestThresholdsEndpoint(t *testing.T) {
	s := New(Config{})
	body := `{"rates":[2,4],"window_size":20,"confidence":0.9,"characterisation_windows":120,"seed":11}`
	rec1 := postRecorder(s, "/v1/thresholds", body)
	if rec1.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec1.Code, rec1.Body.String())
	}
	var tr ThresholdsResponse
	if err := json.Unmarshal(rec1.Body.Bytes(), &tr); err != nil {
		t.Fatal(err)
	}
	if tr.WindowSize != 20 || len(tr.Ratios) == 0 || len(tr.Ratios) != len(tr.Values) {
		t.Errorf("thresholds = %+v", tr)
	}
	rec2 := postRecorder(s, "/v1/thresholds", body)
	if !bytes.Equal(rec1.Body.Bytes(), rec2.Body.Bytes()) {
		t.Error("warm-served thresholds differ from fresh")
	}
	if s.cache.Stats().MemHits == 0 {
		t.Error("second request did not hit the cache")
	}
}

// TestRequestValidation: malformed bodies and unknown enum values are 400s,
// wrong methods 405s, oversized batches rejected.
func TestRequestValidation(t *testing.T) {
	s := New(Config{MaxBadges: 10})
	cases := []struct {
		path, body string
		want       int
	}{
		{"/v1/fleet", `{not json`, http.StatusBadRequest},
		{"/v1/fleet", `{"badges":0}`, http.StatusBadRequest},
		{"/v1/fleet", `{"badges":11}`, http.StatusBadRequest},
		{"/v1/fleet", `{"badges":1,"apps":["doom"]}`, http.StatusBadRequest},
		{"/v1/fleet", `{"badges":1,"policies":["psychic"]}`, http.StatusBadRequest},
		{"/v1/fleet", `{"badges":1,"dpms":["psychic"]}`, http.StatusBadRequest},
		{"/v1/fleet", `{"badges":1,"timeout_ms":-5}`, http.StatusBadRequest},
		{"/v1/fleet", `{"badges":1,"unknown_knob":3}`, http.StatusBadRequest},
		{"/v1/run", `{"app":"doom"}`, http.StatusBadRequest},
		{"/v1/thresholds", `{"rates":[5]}`, http.StatusBadRequest},
	}
	for _, c := range cases {
		rec := postRecorder(s, c.path, c.body)
		if rec.Code != c.want {
			t.Errorf("POST %s %s: status %d, want %d (%s)", c.path, c.body, rec.Code, c.want, rec.Body.String())
		}
		var e errorResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil || e.Error == "" {
			t.Errorf("POST %s: non-JSON error body %s", c.path, rec.Body.String())
		}
	}
	for _, path := range []string{"/v1/fleet", "/v1/run", "/v1/thresholds"} {
		rec := httptest.NewRecorder()
		s.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
		if rec.Code != http.StatusMethodNotAllowed {
			t.Errorf("GET %s: status %d, want 405", path, rec.Code)
		}
	}
}

// TestHealthzAndMetrics: healthz reports ok and metrics exposes the queue,
// latency and cache-hit instruments as a JSON snapshot.
func TestHealthzAndMetrics(t *testing.T) {
	s := New(Config{})
	rec := postRecorder(s, "/v1/fleet", smallFleetBody)
	if rec.Code != http.StatusOK {
		t.Fatalf("fleet: %d %s", rec.Code, rec.Body.String())
	}
	hrec := httptest.NewRecorder()
	s.Handler().ServeHTTP(hrec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	var h healthResponse
	if err := json.Unmarshal(hrec.Body.Bytes(), &h); err != nil || h.Status != "ok" {
		t.Fatalf("healthz = %d %s", hrec.Code, hrec.Body.String())
	}
	mrec := httptest.NewRecorder()
	s.Handler().ServeHTTP(mrec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	var snap map[string]json.RawMessage
	if err := json.Unmarshal(mrec.Body.Bytes(), &snap); err != nil {
		t.Fatalf("metrics not JSON: %v\n%s", err, mrec.Body.String())
	}
	out := mrec.Body.String()
	for _, want := range []string{
		"server.fleet.requests", "server.fleet.latency_ms",
		"server.queue.depth", "server.inflight", "server.thrcache.hit_ratio",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q:\n%s", want, out)
		}
	}
}

// TestFleetErrorIsDeterministic500: engine errors that are not
// cancellations surface as 500 with the engine message.
func TestFleetErrorIsDeterministic500(t *testing.T) {
	s := New(Config{})
	s.runFleet = func(ctx context.Context, cfg fleet.Config) (*fleet.Report, error) {
		return nil, fmt.Errorf("engine exploded")
	}
	rec := postRecorder(s, "/v1/fleet", `{"badges":1,"seed":1}`)
	if rec.Code != http.StatusInternalServerError || !strings.Contains(rec.Body.String(), "engine exploded") {
		t.Errorf("got %d %s", rec.Code, rec.Body.String())
	}
}
