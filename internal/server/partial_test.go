package server

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"testing"

	"smartbadge/internal/fleet"
)

// TestFleetPartialStatus: when the engine isolates badge failures, the
// response reports "partial" with the casualty list alongside the
// surviving results — a crashing badge degrades the answer, it does not
// 500 the request.
func TestFleetPartialStatus(t *testing.T) {
	s := New(Config{})
	s.runFleet = func(ctx context.Context, cfg fleet.Config) (*fleet.Report, error) {
		return &fleet.Report{
			Badges: []fleet.BadgeResult{{Spec: cfg.SpecFor(0)}, {Spec: cfg.SpecFor(2)}},
			Failed: []*fleet.BadgeError{{
				Index: 1,
				Spec:  cfg.SpecFor(1),
				Cause: errors.New("panic: synthetic"),
			}},
			Agg: fleet.Aggregate{Runs: 2},
		}, nil
	}
	rec := postRecorder(s, "/v1/fleet", smallFleetBody)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", rec.Code, rec.Body)
	}
	var resp FleetResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Status != "partial" {
		t.Errorf("status = %q, want partial", resp.Status)
	}
	if len(resp.Badges) != 2 || resp.Agg.Runs != 2 {
		t.Errorf("survivors = %d (agg %d), want 2", len(resp.Badges), resp.Agg.Runs)
	}
	if len(resp.Failed) != 1 {
		t.Fatalf("failed = %+v, want one entry", resp.Failed)
	}
	f := resp.Failed[0]
	if f.Index != 1 || f.App == "" || f.Policy == "" || f.DPM == "" || f.Error != "panic: synthetic" {
		t.Errorf("failed entry = %+v, want identified spec + cause", f)
	}
}

// TestFleetOKOmitsFailed: a fully successful response carries no "failed"
// key at all, so the partial-status feature does not perturb the byte
// encoding of clean runs.
func TestFleetOKOmitsFailed(t *testing.T) {
	s := New(Config{})
	s.runFleet = func(ctx context.Context, cfg fleet.Config) (*fleet.Report, error) {
		return &fleet.Report{
			Badges: []fleet.BadgeResult{{Spec: cfg.SpecFor(0)}},
			Agg:    fleet.Aggregate{Runs: 1},
		}, nil
	}
	rec := postRecorder(s, "/v1/fleet", smallFleetBody)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", rec.Code, rec.Body)
	}
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(rec.Body.Bytes(), &raw); err != nil {
		t.Fatal(err)
	}
	if _, present := raw["failed"]; present {
		t.Errorf("clean response carries a failed key: %s", rec.Body)
	}
	if string(raw["status"]) != `"ok"` {
		t.Errorf("status = %s, want ok", raw["status"])
	}
}

// TestRetryAfterScalesWithQueueDepth pins both branches of the
// queue-derived hint: a shallow queue returns the configured base, a deep
// one multiplies it by the number of in-flight generations queued ahead.
func TestRetryAfterScalesWithQueueDepth(t *testing.T) {
	s := New(Config{MaxInFlight: 4, RetryAfterS: 2})
	cases := []struct {
		waiting int
		want    int
	}{
		{0, 2},  // idle: base hint
		{3, 2},  // shallow: less than one generation queued
		{4, 2},  // boundary: exactly one generation
		{5, 4},  // deep: 2 generations → 2× base
		{12, 6}, // deep: 3 generations
		{13, 8}, // deep: ceil(13/4) = 4 generations
	}
	for _, c := range cases {
		if got := s.retryAfterSeconds(c.waiting); got != c.want {
			t.Errorf("retryAfterSeconds(%d) = %d, want %d", c.waiting, got, c.want)
		}
	}
}

// TestDrainingCarriesRetryAfter: the 503 a draining server answers with
// tells the client when to come back, like a shed 429 does.
func TestDrainingCarriesRetryAfter(t *testing.T) {
	s := New(Config{RetryAfterS: 7})
	s.draining.Store(true)
	rec := postRecorder(s, "/v1/fleet", smallFleetBody)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, body %s", rec.Code, rec.Body)
	}
	if got := rec.Header().Get("Retry-After"); got != "7" {
		t.Errorf("Retry-After = %q, want 7", got)
	}
}
