// idempotency.go: single-flight dedup for the POST endpoints, keyed by the
// client's Idempotency-Key header.
//
// A retried request must not recompute the batch: the retry either joins
// the in-flight computation (single-flight), or replays the completed
// response bytes from a bounded LRU. Replay is byte-exact — the cached
// body is the rendered response, so a retry is indistinguishable from the
// original on the wire. Only 200s are cached: an error response describes
// a transient condition (shed, cancelled, engine failure) that a retry
// should re-attempt, so error entries are broadcast to waiting joiners and
// then forgotten.
package server

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"net/http"
	"sync"
)

const (
	// DefaultIdemEntries is the completed-response LRU capacity.
	DefaultIdemEntries = 256
	// maxIdemKeyLen bounds the client-supplied Idempotency-Key header; the
	// key is an opaque token, not a payload.
	maxIdemKeyLen = 256
	// maxIdemBodyBytes bounds cached response bodies; a batch large enough
	// to exceed it is recomputed on retry rather than pinned in memory.
	maxIdemBodyBytes = 4 << 20
)

// response is one rendered HTTP answer: status, optional Retry-After, and
// the exact body bytes. It is what the idempotency cache stores and what
// every handler's compute step returns.
type response struct {
	code       int
	retryAfter string
	body       []byte
}

// Roles a request can take against the idempotency cache.
const (
	idemLead   = iota // first arrival: runs compute and publishes the result
	idemJoin          // concurrent duplicate: waits for the leader's result
	idemReplay        // later duplicate: the completed response is cached
)

// idemEntry is one key's slot: done closes once resp is final. resp is
// written under the cache mutex before completed flips and before done
// closes, so both the replay path (mutex) and the join path (channel) read
// it race-free.
type idemEntry struct {
	done      chan struct{}
	resp      response
	completed bool
}

// idemCache is the single-flight table plus a bounded FIFO of completed
// 200s. In-flight entries are never evicted — eviction only considers keys
// already in order, which holds completed entries only.
type idemCache struct {
	mu      sync.Mutex
	cap     int
	entries map[string]*idemEntry
	order   []string
}

func newIdemCache(capacity int) *idemCache {
	return &idemCache{cap: capacity, entries: make(map[string]*idemEntry)}
}

// begin claims key and reports this request's role. The returned entry is
// valid for the lifetime of the request regardless of later eviction.
func (c *idemCache) begin(key string) (*idemEntry, int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[key]; ok {
		if e.completed {
			return e, idemReplay
		}
		return e, idemJoin
	}
	e := &idemEntry{done: make(chan struct{})}
	c.entries[key] = e
	return e, idemLead
}

// finish publishes the leader's response: 200s small enough to pin are
// kept for replay (evicting the oldest completed entry beyond capacity),
// everything else is broadcast to joiners and dropped.
func (c *idemCache) finish(key string, e *idemEntry, resp response) {
	c.mu.Lock()
	e.resp = resp
	e.completed = true
	if resp.code == http.StatusOK && len(resp.body) <= maxIdemBodyBytes {
		c.order = append(c.order, key)
		for len(c.order) > c.cap {
			oldest := c.order[0]
			c.order = c.order[1:]
			delete(c.entries, oldest)
		}
	} else {
		delete(c.entries, key)
	}
	c.mu.Unlock()
	close(e.done)
}

// len reports how many keys are resident (in-flight + completed).
func (c *idemCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// idemKey derives the dedup key for one request, or "" when the client
// sent no Idempotency-Key header (no dedup). The client's token is scoped
// by route, by the canonical config hash (so a token reused across
// different work cannot collide) and by the raw body hash (so the token
// covers exactly the bytes the client sent).
func idemKey(r *http.Request, route, scope string, body []byte) (string, error) {
	hdr := r.Header.Get("Idempotency-Key")
	if hdr == "" {
		return "", nil
	}
	if len(hdr) > maxIdemKeyLen {
		return "", fmt.Errorf("Idempotency-Key exceeds %d bytes", maxIdemKeyLen)
	}
	sum := sha256.Sum256(body)
	return route + "\x00" + hdr + "\x00" + scope + "\x00" + hex.EncodeToString(sum[:]), nil
}

// serveIdempotent answers r with the idempotency contract: leaders run
// compute and publish, joiners wait for the leader (or their own context),
// replayers get the cached bytes. With no key, compute runs unshared.
func (s *Server) serveIdempotent(w http.ResponseWriter, r *http.Request, rt *route, key string, compute func() response) {
	if key == "" {
		resp := compute()
		if resp.code != http.StatusOK {
			rt.failures.Inc()
		}
		writeResponse(w, resp)
		return
	}
	e, role := s.idem.begin(key)
	switch role {
	case idemReplay:
		s.cIdemReplay.Inc()
		writeResponse(w, e.resp)
	case idemJoin:
		s.cIdemJoin.Inc()
		select {
		case <-e.done:
			if e.resp.code != http.StatusOK {
				rt.failures.Inc()
			}
			writeResponse(w, e.resp)
		case <-r.Context().Done():
			rt.failures.Inc()
			s.cCanceled.Inc()
			writeCancelled(w)
		}
	default: // idemLead
		s.cIdemMiss.Inc()
		finished := false
		defer func() {
			if !finished {
				// A panic is unwinding through compute: release joiners with
				// a 500 so they never hang, then let net/http handle it.
				s.idem.finish(key, e, respJSON(http.StatusInternalServerError,
					errorResponse{Status: "error", Error: "internal error"}))
			}
		}()
		resp := compute()
		finished = true
		s.idem.finish(key, e, resp)
		if resp.code != http.StatusOK {
			rt.failures.Inc()
		}
		writeResponse(w, resp)
	}
}
