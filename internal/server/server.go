// Package server is the serving surface of the reproduction: an HTTP daemon
// that exposes the fleet batch engine (POST /v1/fleet), single-badge runs
// (POST /v1/run) and threshold characterisation warm-served from the
// content-addressed cache (POST /v1/thresholds), plus /healthz and /metrics.
// The paper's DVS+DPM policies are characterised offline and consumed
// online; this package is the online, request-driven half of that split.
//
// # Request handling
//
// Admission control is a bounded queue in front of a fixed-size execution
// slot pool: at most MaxInFlight requests run engine work concurrently,
// at most QueueDepth more wait for a slot, and anything beyond that is shed
// immediately with 429 and a Retry-After hint — the daemon degrades by
// refusing work it cannot schedule, never by queueing unboundedly.
//
// Per-request deadlines (the request body's timeout_ms, combined with the
// client disconnecting) propagate as a context.Context through
// parallel.ForEachCtx into the fleet shard loops, which poll it between
// badges: a cancelled request aborts after the badge currently simulating,
// not after the whole batch, and the handler answers with a "cancelled"
// status as soon as the in-flight badges finish. Graceful shutdown
// (Shutdown) flips /healthz to draining, stops accepting work, and waits
// for in-flight requests to complete.
//
// # Determinism boundary
//
// The engines behind the endpoints are bit-deterministic, responses are
// rendered with a canonical JSON encoding, and no timing, identity or cache
// state leaks into a response body — so identical request bodies yield
// byte-identical 200 bodies regardless of concurrency, queueing or cache
// temperature. The transport itself (wall-clock latency metrics, Date
// headers, scheduling) is explicitly outside the determinism contract,
// which is why this package — like thrcache — is not a detcheck
// deterministic package while everything it calls into is.
package server

import (
	"context"
	"errors"
	"net"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"smartbadge/internal/changepoint"
	"smartbadge/internal/experiments"
	"smartbadge/internal/fleet"
	"smartbadge/internal/obs"
	"smartbadge/internal/thrcache"
	"smartbadge/internal/units"
)

// Defaults for Config fields left zero.
const (
	DefaultQueueDepth   = 64
	DefaultMaxInFlight  = 4
	DefaultMaxBadges    = 100_000
	DefaultMaxTimeoutMS = 600_000 // 10 minutes
	DefaultRetryAfterS  = 1
)

// Config tunes a Server. The zero value serves with the defaults above and
// the process-wide threshold cache.
type Config struct {
	// Cache serves /v1/thresholds and reports hit ratios on /metrics.
	// nil selects the process-wide cache (experiments.ThresholdCache), so
	// the daemon's fleet runs and its thresholds endpoint share one cache.
	Cache *thrcache.Cache
	// MaxInFlight bounds concurrently executing engine requests;
	// <= 0 selects DefaultMaxInFlight.
	MaxInFlight int
	// QueueDepth bounds requests waiting for an execution slot; when the
	// queue is full new work is shed with 429. <= 0 selects
	// DefaultQueueDepth.
	QueueDepth int
	// MaxBadges caps the batch size a single /v1/fleet request may ask
	// for; <= 0 selects DefaultMaxBadges.
	MaxBadges int
	// MaxTimeoutMS caps client-requested deadlines (timeout_ms values
	// above it are clamped); <= 0 selects DefaultMaxTimeoutMS.
	MaxTimeoutMS int64
	// RetryAfterS is the Retry-After hint attached to shed (429)
	// responses; <= 0 selects DefaultRetryAfterS.
	RetryAfterS int
	// IdemEntries bounds the completed-response LRU backing Idempotency-Key
	// replay; <= 0 selects DefaultIdemEntries.
	IdemEntries int
	// ReadHeaderTimeout bounds how long a connection may dribble request
	// headers before it is reaped (slow-loris defence; also what lets
	// Shutdown finish while a stalled client holds a connection).
	// <= 0 selects 10s.
	ReadHeaderTimeout time.Duration
	// ReadTimeout bounds reading one full request including its body;
	// <= 0 selects 2 minutes (bodies are capped at 1 MiB, so a slower
	// sender is stalling, not large).
	ReadTimeout time.Duration
	// WriteTimeout bounds writing a response, measured from when request
	// reading begins; <= 0 derives MaxTimeoutMS + 1 minute so it never cuts
	// a run the deadline cap still allows. Runs with timeout_ms=0 are
	// transport-bounded by this value.
	WriteTimeout time.Duration
}

// route bundles one endpoint's pre-resolved instruments (obs handles are
// resolved once at construction, per the obs discipline).
type route struct {
	requests  *obs.SyncCounter
	failures  *obs.SyncCounter
	latencyMS *obs.SyncHistogram
}

// Server is the daemon. Create with New; serve with Serve or via Handler.
type Server struct {
	cfg   Config
	cache *thrcache.Cache
	mux   *http.ServeMux
	httpd *http.Server

	sem      chan struct{} // execution slots; len == in-flight engine runs
	waiting  atomic.Int64  // admission queue depth
	inflight atomic.Int64
	draining atomic.Bool

	idem *idemCache

	metrics     *obs.SyncRegistry
	gQueue      *obs.SyncGauge
	gInFlight   *obs.SyncGauge
	cShed       *obs.SyncCounter
	cCanceled   *obs.SyncCounter
	cIdemMiss   *obs.SyncCounter
	cIdemJoin   *obs.SyncCounter
	cIdemReplay *obs.SyncCounter
	cEngineFlt  *obs.SyncCounter
	gCacheMem   *obs.SyncGauge
	gCacheDsk   *obs.SyncGauge
	gCacheMis   *obs.SyncGauge
	gCacheShr   *obs.SyncGauge
	gCacheHit   *obs.SyncGauge

	rFleet route
	rRun   route
	rThr   route

	// Engine seams; production wiring in New, replaced by tests to model
	// slow or blocking work without burning CPU.
	runFleet     func(ctx context.Context, cfg fleet.Config) (*fleet.Report, error)
	characterise func(cfg changepoint.Config) (*changepoint.Thresholds, error)
}

// latencyBucketsMS spans sub-millisecond health probes to multi-minute
// characterisations.
var latencyBucketsMS = []float64{1, 5, 10, 50, 100, 500, 1000, 5000, 30_000, 120_000}

// New assembles a Server from cfg.
func New(cfg Config) *Server {
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = DefaultMaxInFlight
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = DefaultQueueDepth
	}
	if cfg.MaxBadges <= 0 {
		cfg.MaxBadges = DefaultMaxBadges
	}
	if cfg.MaxTimeoutMS <= 0 {
		cfg.MaxTimeoutMS = DefaultMaxTimeoutMS
	}
	if cfg.RetryAfterS <= 0 {
		cfg.RetryAfterS = DefaultRetryAfterS
	}
	if cfg.IdemEntries <= 0 {
		cfg.IdemEntries = DefaultIdemEntries
	}
	if cfg.ReadHeaderTimeout <= 0 {
		cfg.ReadHeaderTimeout = 10 * time.Second
	}
	if cfg.ReadTimeout <= 0 {
		cfg.ReadTimeout = 2 * time.Minute
	}
	if cfg.WriteTimeout <= 0 {
		cfg.WriteTimeout = time.Duration(cfg.MaxTimeoutMS)*time.Millisecond + time.Minute
	}
	cache := cfg.Cache
	if cache == nil {
		cache = experiments.ThresholdCache()
	}
	m := obs.NewSyncRegistry()
	s := &Server{
		cfg:         cfg,
		cache:       cache,
		mux:         http.NewServeMux(),
		sem:         make(chan struct{}, cfg.MaxInFlight),
		idem:        newIdemCache(cfg.IdemEntries),
		metrics:     m,
		gQueue:      m.Gauge("server.queue.depth"),
		gInFlight:   m.Gauge("server.inflight"),
		cShed:       m.Counter("server.shed"),
		cCanceled:   m.Counter("server.cancelled"),
		cIdemMiss:   m.Counter("server.idem.miss"),
		cIdemJoin:   m.Counter("server.idem.join"),
		cIdemReplay: m.Counter("server.idem.replay"),
		cEngineFlt:  m.Counter("server.engine.fleet_runs"),
		gCacheMem:   m.Gauge("server.thrcache.mem_hits"),
		gCacheDsk:   m.Gauge("server.thrcache.disk_hits"),
		gCacheMis:   m.Gauge("server.thrcache.misses"),
		gCacheShr:   m.Gauge("server.thrcache.shared"),
		gCacheHit:   m.Gauge("server.thrcache.hit_ratio"),
		rFleet: route{
			requests:  m.Counter("server.fleet.requests"),
			failures:  m.Counter("server.fleet.failures"),
			latencyMS: m.Histogram("server.fleet.latency_ms", latencyBucketsMS),
		},
		rRun: route{
			requests:  m.Counter("server.run.requests"),
			failures:  m.Counter("server.run.failures"),
			latencyMS: m.Histogram("server.run.latency_ms", latencyBucketsMS),
		},
		rThr: route{
			requests:  m.Counter("server.thresholds.requests"),
			failures:  m.Counter("server.thresholds.failures"),
			latencyMS: m.Histogram("server.thresholds.latency_ms", latencyBucketsMS),
		},
		runFleet: fleet.RunCtx,
	}
	s.characterise = cache.Characterise
	s.mux.HandleFunc("/v1/fleet", s.handleFleet)
	s.mux.HandleFunc("/v1/run", s.handleRun)
	s.mux.HandleFunc("/v1/thresholds", s.handleThresholds)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.httpd = &http.Server{
		Handler:           s.mux,
		ReadHeaderTimeout: cfg.ReadHeaderTimeout,
		ReadTimeout:       cfg.ReadTimeout,
		WriteTimeout:      cfg.WriteTimeout,
	}
	return s
}

// engineFleet is the counted engine entry point: every real batch
// computation passes through here, so server.engine.fleet_runs is the
// ground truth for "a retry performed zero additional simulations".
func (s *Server) engineFleet(ctx context.Context, cfg fleet.Config) (*fleet.Report, error) {
	s.cEngineFlt.Inc()
	return s.runFleet(ctx, cfg)
}

// Handler returns the daemon's HTTP handler (for tests and embedding).
func (s *Server) Handler() http.Handler { return s.mux }

// Metrics returns the daemon's metrics registry.
func (s *Server) Metrics() *obs.SyncRegistry { return s.metrics }

// Serve accepts connections on l until Shutdown; it returns
// http.ErrServerClosed after a clean shutdown, like net/http.
func (s *Server) Serve(l net.Listener) error { return s.httpd.Serve(l) }

// Shutdown drains the daemon gracefully: /healthz flips to draining and
// rejects new engine work, the listener closes, and Shutdown blocks until
// every in-flight request has completed or ctx expires.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	return s.httpd.Shutdown(ctx)
}

// Admission outcomes. errShed and errDraining are terminal HTTP conditions;
// a context error means the client went away while queued.
var (
	errShed     = errors.New("server: admission queue full")
	errDraining = errors.New("server: draining, not accepting new work")
)

// admit reserves an execution slot, waiting in the bounded queue if all
// slots are busy. It returns a release closure on success; on failure the
// error is errShed, errDraining, or ctx.Err().
func (s *Server) admit(ctx context.Context) (release func(), err error) {
	if s.draining.Load() {
		return nil, errDraining
	}
	for {
		cur := s.waiting.Load()
		if cur >= int64(s.cfg.QueueDepth) {
			s.cShed.Inc()
			return nil, errShed
		}
		if s.waiting.CompareAndSwap(cur, cur+1) {
			break
		}
	}
	s.gQueue.Set(float64(s.waiting.Load()))
	defer func() {
		s.gQueue.Set(float64(s.waiting.Add(-1)))
	}()
	select {
	case s.sem <- struct{}{}:
		s.gInFlight.Set(float64(s.inflight.Add(1)))
		return func() {
			<-s.sem
			s.gInFlight.Set(float64(s.inflight.Add(-1)))
		}, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// requestCtx derives the request context: the client's (cancels on
// disconnect) bounded by the body's timeout_ms when one is given, clamped
// to the configured maximum.
func (s *Server) requestCtx(r *http.Request, timeoutMS int64) (context.Context, context.CancelFunc) {
	if timeoutMS <= 0 {
		return context.WithCancel(r.Context())
	}
	if timeoutMS > s.cfg.MaxTimeoutMS {
		timeoutMS = s.cfg.MaxTimeoutMS
	}
	return context.WithTimeout(r.Context(), time.Duration(timeoutMS)*time.Millisecond)
}

// observeLatency records one request's wall-clock service time. Transport
// telemetry only — never part of a response body.
func observeLatency(rt *route, start time.Time) {
	rt.latencyMS.Observe(units.SToMS(time.Since(start).Seconds()))
}

// scrapeCacheStats refreshes the threshold-cache gauges from the live
// counters; called on each /metrics scrape.
func (s *Server) scrapeCacheStats() {
	st := s.cache.Stats()
	s.gCacheMem.Set(float64(st.MemHits))
	s.gCacheDsk.Set(float64(st.DiskHits))
	s.gCacheMis.Set(float64(st.Misses))
	s.gCacheShr.Set(float64(st.Shared))
	served := st.MemHits + st.DiskHits + st.Misses + st.Shared
	if served == 0 {
		s.gCacheHit.Set(0)
		return
	}
	s.gCacheHit.Set(float64(st.MemHits+st.DiskHits+st.Shared) / float64(served))
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	status, code := "ok", http.StatusOK
	if s.draining.Load() {
		status, code = "draining", http.StatusServiceUnavailable
	}
	writeJSON(w, code, healthResponse{
		Status:   status,
		InFlight: s.inflight.Load(),
		Queued:   s.waiting.Load(),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	s.scrapeCacheStats()
	w.Header().Set("Content-Type", "application/json")
	if err := s.metrics.WriteJSON(w); err != nil {
		// Headers are gone; nothing useful left to do.
		return
	}
}

// retryAfterValue renders the Retry-After header for shed (429) and
// draining (503) responses from the current queue depth: with the queue no
// deeper than one in-flight generation the configured hint stands, and a
// deeper queue scales it by the number of generations ahead — a client
// shed behind 3× MaxInFlight waiters retrying after one hint interval
// would land right back in the same full queue.
func (s *Server) retryAfterValue() string {
	return strconv.Itoa(s.retryAfterSeconds(int(s.waiting.Load())))
}

func (s *Server) retryAfterSeconds(waiting int) int {
	hint := s.cfg.RetryAfterS
	if waiting > s.cfg.MaxInFlight {
		generations := (waiting + s.cfg.MaxInFlight - 1) / s.cfg.MaxInFlight
		hint *= generations
	}
	return hint
}
