package server

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"smartbadge/internal/changepoint"
	"smartbadge/internal/fleet"
)

// postKeyed is postRecorder plus an Idempotency-Key header.
func postKeyed(s *Server, path, body, key string) *httptest.ResponseRecorder {
	rec := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
	if key != "" {
		req.Header.Set("Idempotency-Key", key)
	}
	s.Handler().ServeHTTP(rec, req)
	return rec
}

// countingCharacterise is a stub characterisation with an invocation
// counter, returning a fixed two-ratio table.
func countingCharacterise(calls *atomic.Int64) func(cfg changepoint.Config) (*changepoint.Thresholds, error) {
	return func(cfg changepoint.Config) (*changepoint.Thresholds, error) {
		calls.Add(1)
		return changepoint.RestoreThresholds(changepoint.ThresholdSet{
			WindowSize: 100,
			Confidence: 0.95,
			Ratios:     []float64{0.5, 2},
			Values:     []float64{1.5, 1.75},
		})
	}
}

// countingEngine wraps a stub engine with an invocation counter.
func countingEngine(calls *atomic.Int64) func(ctx context.Context, cfg fleet.Config) (*fleet.Report, error) {
	return func(ctx context.Context, cfg fleet.Config) (*fleet.Report, error) {
		calls.Add(1)
		return &fleet.Report{Badges: []fleet.BadgeResult{{Spec: cfg.SpecFor(0)}}}, nil
	}
}

func counterValue(s *Server, name string) float64 {
	snap := s.Metrics().Snapshot()
	return snap.Counters[name]
}

func TestIdempotentRepeatSkipsEngine(t *testing.T) {
	s := New(Config{})
	var calls atomic.Int64
	s.runFleet = countingEngine(&calls)

	first := postKeyed(s, "/v1/fleet", smallFleetBody, "retry-abc")
	if first.Code != http.StatusOK {
		t.Fatalf("first POST = %d: %s", first.Code, first.Body.String())
	}
	second := postKeyed(s, "/v1/fleet", smallFleetBody, "retry-abc")
	if second.Code != http.StatusOK {
		t.Fatalf("second POST = %d: %s", second.Code, second.Body.String())
	}
	if first.Body.String() != second.Body.String() {
		t.Fatal("replayed body differs from the original")
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("engine ran %d times, want 1 (replay must not recompute)", got)
	}
	if got := counterValue(s, "server.engine.fleet_runs"); got != 1 {
		t.Fatalf("server.engine.fleet_runs = %v, want 1", got)
	}
	if got := counterValue(s, "server.idem.miss"); got != 1 {
		t.Fatalf("server.idem.miss = %v, want 1", got)
	}
	if got := counterValue(s, "server.idem.replay"); got != 1 {
		t.Fatalf("server.idem.replay = %v, want 1", got)
	}
}

func TestIdempotentJoinersShareOneRun(t *testing.T) {
	s := New(Config{})
	release := make(chan struct{})
	var calls atomic.Int64
	inner := blockingEngine(release)
	s.runFleet = func(ctx context.Context, cfg fleet.Config) (*fleet.Report, error) {
		calls.Add(1)
		return inner(ctx, cfg)
	}

	const dupes = 4
	bodies := make([]string, dupes)
	codes := make([]int, dupes)
	var wg sync.WaitGroup
	for i := 0; i < dupes; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rec := postKeyed(s, "/v1/fleet", smallFleetBody, "storm-key")
			bodies[i], codes[i] = rec.Body.String(), rec.Code
		}(i)
	}
	// One leader computes, the rest join it.
	waitFor(t, "the leader to reach the engine", func() bool { return calls.Load() == 1 })
	waitFor(t, "joiners to subscribe", func() bool {
		return counterValue(s, "server.idem.join") == dupes-1
	})
	close(release)
	wg.Wait()
	for i := 0; i < dupes; i++ {
		if codes[i] != http.StatusOK {
			t.Fatalf("request %d = %d: %s", i, codes[i], bodies[i])
		}
		if bodies[i] != bodies[0] {
			t.Fatalf("request %d body differs from the leader's", i)
		}
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("engine ran %d times for %d concurrent duplicates, want 1", got, dupes)
	}
}

func TestIdempotencyScopesByKeyAndBody(t *testing.T) {
	s := New(Config{})
	var calls atomic.Int64
	s.runFleet = countingEngine(&calls)

	postKeyed(s, "/v1/fleet", smallFleetBody, "key-one")
	postKeyed(s, "/v1/fleet", smallFleetBody, "key-two") // different token: recompute
	if got := calls.Load(); got != 2 {
		t.Fatalf("engine ran %d times for two distinct keys, want 2", got)
	}
	// Same token, different body: the body hash keeps them apart.
	other := `{"badges":4,"seed":7,"apps":["mp3"],"policies":["expavg"],"dpms":["none"]}`
	postKeyed(s, "/v1/fleet", other, "key-one")
	if got := calls.Load(); got != 3 {
		t.Fatalf("engine ran %d times after a same-key different-body POST, want 3", got)
	}
	// No header: no dedup, every POST computes.
	postKeyed(s, "/v1/fleet", smallFleetBody, "")
	postKeyed(s, "/v1/fleet", smallFleetBody, "")
	if got := calls.Load(); got != 5 {
		t.Fatalf("engine ran %d times with dedup disabled, want 5", got)
	}
}

func TestIdempotencyErrorResponsesAreNotCached(t *testing.T) {
	s := New(Config{})
	var calls atomic.Int64
	s.runFleet = func(ctx context.Context, cfg fleet.Config) (*fleet.Report, error) {
		if calls.Add(1) == 1 {
			return nil, fmt.Errorf("transient engine failure")
		}
		return &fleet.Report{Badges: []fleet.BadgeResult{{Spec: cfg.SpecFor(0)}}}, nil
	}

	first := postKeyed(s, "/v1/fleet", smallFleetBody, "flaky")
	if first.Code != http.StatusInternalServerError {
		t.Fatalf("first POST = %d, want 500", first.Code)
	}
	second := postKeyed(s, "/v1/fleet", smallFleetBody, "flaky")
	if second.Code != http.StatusOK {
		t.Fatalf("retry after an error = %d, want 200 (errors must not be replayed)", second.Code)
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("engine ran %d times, want 2", got)
	}
}

func TestIdempotencyKeyTooLongRejected(t *testing.T) {
	s := New(Config{})
	var calls atomic.Int64
	s.runFleet = countingEngine(&calls)
	rec := postKeyed(s, "/v1/fleet", smallFleetBody, strings.Repeat("k", maxIdemKeyLen+1))
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("oversized key = %d, want 400", rec.Code)
	}
	if calls.Load() != 0 {
		t.Fatal("engine ran for a rejected key")
	}
}

func TestIdempotencyCacheBounded(t *testing.T) {
	s := New(Config{IdemEntries: 2})
	var calls atomic.Int64
	s.runFleet = countingEngine(&calls)
	for i := 0; i < 5; i++ {
		rec := postKeyed(s, "/v1/fleet", smallFleetBody, fmt.Sprintf("key-%d", i))
		if rec.Code != http.StatusOK {
			t.Fatalf("POST %d = %d", i, rec.Code)
		}
	}
	if got := s.idem.len(); got > 2 {
		t.Fatalf("idempotency cache holds %d entries, want <= 2", got)
	}
	// The newest key is still resident: a replay must not recompute.
	before := calls.Load()
	postKeyed(s, "/v1/fleet", smallFleetBody, "key-4")
	if calls.Load() != before {
		t.Fatal("newest key was evicted; LRU must keep the most recent entries")
	}
	// The oldest was evicted: same key recomputes.
	postKeyed(s, "/v1/fleet", smallFleetBody, "key-0")
	if calls.Load() != before+1 {
		t.Fatal("evicted key did not recompute")
	}
}

func TestIdempotencyCoversRunAndThresholds(t *testing.T) {
	s := New(Config{})
	var calls atomic.Int64
	s.runFleet = countingEngine(&calls)
	runBody := `{"app":"mp3","policy":"expavg","dpm":"none","seed":7}`
	first := postKeyed(s, "/v1/run", runBody, "run-key")
	second := postKeyed(s, "/v1/run", runBody, "run-key")
	if first.Code != http.StatusOK || second.Code != http.StatusOK {
		t.Fatalf("run POSTs = %d, %d", first.Code, second.Code)
	}
	if first.Body.String() != second.Body.String() {
		t.Fatal("replayed /v1/run body differs")
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("engine ran %d times for a repeated /v1/run, want 1", got)
	}

	var thrCalls atomic.Int64
	s.characterise = countingCharacterise(&thrCalls)
	thrBody := `{"rates":[6,12,24],"characterisation_windows":120}`
	tFirst := postKeyed(s, "/v1/thresholds", thrBody, "thr-key")
	tSecond := postKeyed(s, "/v1/thresholds", thrBody, "thr-key")
	if tFirst.Code != http.StatusOK || tSecond.Code != http.StatusOK {
		t.Fatalf("thresholds POSTs = %d, %d: %s", tFirst.Code, tSecond.Code, tFirst.Body.String())
	}
	if tFirst.Body.String() != tSecond.Body.String() {
		t.Fatal("replayed /v1/thresholds body differs")
	}
	if got := thrCalls.Load(); got != 1 {
		t.Fatalf("characterise ran %d times for a repeated /v1/thresholds, want 1", got)
	}
}

// TestOversizedBodyRejected413: a body beyond maxBodyBytes must be refused
// with 413 before any engine work, and the handler must not hang reading it.
func TestOversizedBodyRejected413(t *testing.T) {
	s := New(Config{})
	var calls atomic.Int64
	s.runFleet = countingEngine(&calls)
	big := `{"badges":3,"seed":7,"apps":["` + strings.Repeat("a", maxBodyBytes) + `"]}`
	for _, path := range []string{"/v1/fleet", "/v1/run", "/v1/thresholds"} {
		rec := postRecorder(s, path, big)
		if rec.Code != http.StatusRequestEntityTooLarge {
			t.Fatalf("%s oversized body = %d, want 413", path, rec.Code)
		}
		if !strings.Contains(rec.Body.String(), "request body exceeds") {
			t.Fatalf("%s 413 body = %s", path, rec.Body.String())
		}
	}
	if calls.Load() != 0 {
		t.Fatal("engine ran despite the oversized body")
	}
}

// TestSlowLorisConnDoesNotBlockDrain (satellite): a client that opens a
// connection and dribbles headers forever must not hold up Shutdown —
// ReadHeaderTimeout reaps it, so the drain completes within budget.
func TestSlowLorisConnDoesNotBlockDrain(t *testing.T) {
	s := New(Config{ReadHeaderTimeout: 200 * time.Millisecond})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	served := make(chan error, 1)
	go func() { served <- s.Serve(l) }()

	// The slow-loris: partial headers, then silence while holding the conn.
	c, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Write([]byte("POST /v1/fleet HTTP/1.1\r\nHost: x\r\nContent-Le")); err != nil {
		t.Fatal(err)
	}

	// A healthy request proves the server is live despite the stalled conn.
	resp, body := post(t, "http://"+l.Addr().String()+"/healthz", "")
	_ = body
	if resp.StatusCode != http.StatusMethodNotAllowed { // POST to healthz: 405
		t.Fatalf("healthz probe = %d", resp.StatusCode)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	start := time.Now()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown with a slow-loris conn pending = %v (drain budget blown)", err)
	}
	if elapsed := time.Since(start); elapsed > 4*time.Second {
		t.Fatalf("drain took %v, want well under the 5s budget", elapsed)
	}
	if err := <-served; err != http.ErrServerClosed {
		t.Fatalf("Serve returned %v", err)
	}
}
