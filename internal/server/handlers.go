// handlers.go: the /v1 endpoints — request/response DTOs, validation, and
// the shared admit → run-with-context → render pipeline.
//
// Responses are rendered with one canonical encoding (json.Marshal of typed
// structs, trailing newline) and carry no timing, identity or cache-state
// fields, so a given request body always produces the same bytes.

package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"smartbadge/internal/changepoint"
	"smartbadge/internal/experiments"
	"smartbadge/internal/fleet"
)

// maxBodyBytes bounds request bodies; the largest legitimate request (a
// thresholds rate grid) is a few kilobytes.
const maxBodyBytes = 1 << 20

// FleetRequest is the body of POST /v1/fleet. Empty axis slices select the
// default heterogeneous mix, exactly like fleet.Config.
type FleetRequest struct {
	Badges   int      `json:"badges"`
	Seed     uint64   `json:"seed"`
	Workers  int      `json:"workers,omitempty"`
	Apps     []string `json:"apps,omitempty"`
	Policies []string `json:"policies,omitempty"`
	DPMs     []string `json:"dpms,omitempty"`
	// TimeoutMS is the server-side deadline for this request; 0 means no
	// deadline (the client disconnecting still cancels). Values above the
	// configured maximum are clamped.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// BadgeJSON is the wire form of one badge's result.
type BadgeJSON struct {
	Index         int     `json:"index"`
	App           string  `json:"app"`
	Policy        string  `json:"policy"`
	DPM           string  `json:"dpm"`
	EnergyJ       float64 `json:"energy_j"`
	MeanDelayS    float64 `json:"mean_delay_s"`
	SimTimeS      float64 `json:"sim_time_s"`
	AvgPowerW     float64 `json:"avg_power_w"`
	FramesDecoded int     `json:"frames_decoded"`
	Sleeps        int     `json:"sleeps"`
}

// AggregateJSON is the wire form of the batch aggregates.
type AggregateJSON struct {
	Runs         int     `json:"runs"`
	TotalEnergyJ float64 `json:"total_energy_j"`
	TotalSimS    float64 `json:"total_sim_s"`
	EnergyP50J   float64 `json:"energy_p50_j"`
	EnergyP90J   float64 `json:"energy_p90_j"`
	EnergyP99J   float64 `json:"energy_p99_j"`
	DelayP50S    float64 `json:"delay_p50_s"`
	DelayP90S    float64 `json:"delay_p90_s"`
	DelayP99S    float64 `json:"delay_p99_s"`
}

// FailedBadgeJSON is the wire form of one failed badge: the identifying
// spec plus the cause. Failures are index-ordered, like results.
type FailedBadgeJSON struct {
	Index  int    `json:"index"`
	App    string `json:"app"`
	Policy string `json:"policy"`
	DPM    string `json:"dpm"`
	Error  string `json:"error"`
}

// FleetResponse is the 200 body of POST /v1/fleet. Status is "ok" when
// every badge succeeded and "partial" when some failed: the engine
// isolates per-badge panics and errors (fleet.BadgeError), aggregates over
// the survivors and lists the casualties here instead of failing the
// request.
type FleetResponse struct {
	Status string            `json:"status"`
	Agg    AggregateJSON     `json:"agg"`
	Badges []BadgeJSON       `json:"badges"`
	Failed []FailedBadgeJSON `json:"failed,omitempty"`
}

// RunRequest is the body of POST /v1/run: one badge, fully specified.
// Empty fields take the first default-axis value.
type RunRequest struct {
	App       string `json:"app,omitempty"`
	Policy    string `json:"policy,omitempty"`
	DPM       string `json:"dpm,omitempty"`
	Seed      uint64 `json:"seed"`
	TimeoutMS int64  `json:"timeout_ms,omitempty"`
}

// RunResponse is the 200 body of POST /v1/run.
type RunResponse struct {
	Status string    `json:"status"`
	Badge  BadgeJSON `json:"badge"`
}

// ThresholdsRequest is the body of POST /v1/thresholds: a candidate rate
// grid plus optional overrides of the paper-default detector
// characterisation knobs (zero values keep the defaults).
type ThresholdsRequest struct {
	Rates                   []float64 `json:"rates"`
	WindowSize              int       `json:"window_size,omitempty"`
	Confidence              float64   `json:"confidence,omitempty"`
	CharacterisationWindows int       `json:"characterisation_windows,omitempty"`
	Seed                    uint64    `json:"seed,omitempty"`
	TimeoutMS               int64     `json:"timeout_ms,omitempty"`
}

// ThresholdsResponse is the 200 body of POST /v1/thresholds: the threshold
// table in changepoint.ThresholdSet order. Whether it was computed fresh or
// served from cache is deliberately not part of the body (it would break
// byte-identity across repeats); cache outcomes are on /metrics.
type ThresholdsResponse struct {
	Status     string    `json:"status"`
	WindowSize int       `json:"window_size"`
	Confidence float64   `json:"confidence"`
	Ratios     []float64 `json:"ratios"`
	Values     []float64 `json:"values"`
}

// errorResponse is every non-200 body.
type errorResponse struct {
	Status string `json:"status"`
	Error  string `json:"error"`
}

// respJSON renders v with the canonical encoding; this is the one
// json.Marshal site for response bodies, so every path — fresh, joined or
// replayed — emits identical bytes for identical values. Marshal failure
// on these closed DTO types is unreachable.
func respJSON(code int, v any) response {
	body, err := json.Marshal(v)
	if err != nil {
		return response{
			code: http.StatusInternalServerError,
			body: []byte(`{"status":"error","error":"encoding failure"}` + "\n"),
		}
	}
	return response{code: code, body: append(body, '\n')}
}

// writeResponse puts a rendered response on the wire.
func writeResponse(w http.ResponseWriter, resp response) {
	if resp.retryAfter != "" {
		w.Header().Set("Retry-After", resp.retryAfter)
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", fmt.Sprint(len(resp.body)))
	w.WriteHeader(resp.code)
	w.Write(resp.body)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	writeResponse(w, respJSON(code, v))
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, errorResponse{Status: "error", Error: msg})
}

// cancelledResponse answers a request whose context died mid-run. The
// message is fixed: the engine's joined cancellation error varies with
// shard timing and has no place in a response body.
func cancelledResponse() response {
	return respJSON(http.StatusGatewayTimeout, errorResponse{
		Status: "cancelled",
		Error:  "deadline exceeded or client gone before the run completed",
	})
}

func writeCancelled(w http.ResponseWriter) {
	writeResponse(w, cancelledResponse())
}

// readBody drains the request body under the hard cap, answering 413 when
// the client exceeds it (MaxBytesReader also severs the connection, so an
// unbounded sender cannot keep streaming).
func (s *Server) readBody(w http.ResponseWriter, r *http.Request, rt *route) ([]byte, bool) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		rt.failures.Inc()
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("request body exceeds %d bytes", maxBodyBytes))
			return nil, false
		}
		writeError(w, http.StatusBadRequest, "reading request body: "+err.Error())
		return nil, false
	}
	return body, true
}

// decodeBytes strictly decodes a request body into v (unknown fields are
// errors — they are silent typos of the knobs above).
func decodeBytes(data []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("invalid JSON body: %v", err)
	}
	return nil
}

// admitResponse maps an admission failure to its HTTP response.
func (s *Server) admitResponse(err error) response {
	switch {
	case errors.Is(err, errShed):
		resp := respJSON(http.StatusTooManyRequests, errorResponse{
			Status: "shed",
			Error:  "admission queue full; retry later",
		})
		resp.retryAfter = s.retryAfterValue()
		return resp
	case errors.Is(err, errDraining):
		// The drain will finish; tell well-behaved clients when to come
		// back instead of leaving them to guess.
		resp := respJSON(http.StatusServiceUnavailable, errorResponse{
			Status: "error",
			Error:  "server is draining",
		})
		resp.retryAfter = s.retryAfterValue()
		return resp
	default: // context cancelled while queued
		s.cCanceled.Inc()
		return cancelledResponse()
	}
}

// parseFleetConfig validates a FleetRequest against the server limits and
// lowers it to a fleet.Config.
func (s *Server) parseFleetConfig(req FleetRequest) (fleet.Config, error) {
	if req.Badges < 1 {
		return fleet.Config{}, fmt.Errorf("badges must be >= 1, got %d", req.Badges)
	}
	if req.Badges > s.cfg.MaxBadges {
		return fleet.Config{}, fmt.Errorf("badges %d exceeds the server limit %d", req.Badges, s.cfg.MaxBadges)
	}
	if req.TimeoutMS < 0 {
		return fleet.Config{}, fmt.Errorf("timeout_ms must be >= 0, got %d", req.TimeoutMS)
	}
	pols := make([]experiments.PolicyKind, 0, len(req.Policies))
	for _, p := range req.Policies {
		k, err := experiments.ParsePolicyKind(p)
		if err != nil {
			return fleet.Config{}, err
		}
		pols = append(pols, k)
	}
	cfg := fleet.Config{
		Badges:   req.Badges,
		Seed:     req.Seed,
		Workers:  req.Workers,
		Apps:     req.Apps,
		Policies: pols,
		DPMs:     req.DPMs,
	}
	// Surface app/DPM typos as 400s now rather than 500s mid-run: the spec
	// derivation is the cheap, pure part of the engine.
	if _, err := fleet.Validate(cfg); err != nil {
		return fleet.Config{}, err
	}
	return cfg, nil
}

func badgeJSON(b fleet.BadgeResult) BadgeJSON {
	return BadgeJSON{
		Index:         b.Index,
		App:           b.App,
		Policy:        b.Policy.WireName(),
		DPM:           b.DPM,
		EnergyJ:       b.EnergyJ,
		MeanDelayS:    b.MeanDelayS,
		SimTimeS:      b.SimTimeS,
		AvgPowerW:     b.AvgPowerW,
		FramesDecoded: b.FramesDecoded,
		Sleeps:        b.Sleeps,
	}
}

func fleetResponse(rep *fleet.Report) FleetResponse {
	status := "ok"
	if len(rep.Failed) > 0 {
		status = "partial"
	}
	resp := FleetResponse{
		Status: status,
		Agg: AggregateJSON{
			Runs:         rep.Agg.Runs,
			TotalEnergyJ: rep.Agg.TotalEnergyJ,
			TotalSimS:    rep.Agg.TotalSimS,
			EnergyP50J:   rep.Agg.EnergyP50J,
			EnergyP90J:   rep.Agg.EnergyP90J,
			EnergyP99J:   rep.Agg.EnergyP99J,
			DelayP50S:    rep.Agg.DelayP50S,
			DelayP90S:    rep.Agg.DelayP90S,
			DelayP99S:    rep.Agg.DelayP99S,
		},
		Badges: make([]BadgeJSON, len(rep.Badges)),
	}
	for i, b := range rep.Badges {
		resp.Badges[i] = badgeJSON(b)
	}
	for _, f := range rep.Failed {
		resp.Failed = append(resp.Failed, FailedBadgeJSON{
			Index:  f.Index,
			App:    f.Spec.App,
			Policy: f.Spec.Policy.WireName(),
			DPM:    f.Spec.DPM,
			Error:  f.Cause.Error(),
		})
	}
	return resp
}

func (s *Server) handleFleet(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	defer observeLatency(&s.rFleet, start)
	s.rFleet.requests.Inc()
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	body, ok := s.readBody(w, r, &s.rFleet)
	if !ok {
		return
	}
	var req FleetRequest
	if err := decodeBytes(body, &req); err != nil {
		s.rFleet.failures.Inc()
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	cfg, err := s.parseFleetConfig(req)
	if err != nil {
		s.rFleet.failures.Inc()
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	// cfg passed fleet.Validate above, so Hash cannot fail here.
	scope, _ := cfg.Hash()
	key, err := idemKey(r, "fleet", scope, body)
	if err != nil {
		s.rFleet.failures.Inc()
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	s.serveIdempotent(w, r, &s.rFleet, key, func() response {
		ctx, cancel := s.requestCtx(r, req.TimeoutMS)
		defer cancel()
		release, err := s.admit(ctx)
		if err != nil {
			return s.admitResponse(err)
		}
		defer release()
		rep, err := s.engineFleet(ctx, cfg)
		if err != nil {
			if ctx.Err() != nil {
				s.cCanceled.Inc()
				return cancelledResponse()
			}
			return respJSON(http.StatusInternalServerError, errorResponse{Status: "error", Error: err.Error()})
		}
		return respJSON(http.StatusOK, fleetResponse(rep))
	})
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	defer observeLatency(&s.rRun, start)
	s.rRun.requests.Inc()
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	body, ok := s.readBody(w, r, &s.rRun)
	if !ok {
		return
	}
	var req RunRequest
	if err := decodeBytes(body, &req); err != nil {
		s.rRun.failures.Inc()
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	// A single badge is a one-element batch pinned to every axis, so /v1/run
	// shares the fleet engine — and its cancellation points — wholesale.
	freq := FleetRequest{
		Badges:    1,
		Seed:      req.Seed,
		Workers:   1,
		TimeoutMS: req.TimeoutMS,
	}
	if req.App != "" {
		freq.Apps = []string{req.App}
	}
	if req.Policy != "" {
		freq.Policies = []string{req.Policy}
	}
	if req.DPM != "" {
		freq.DPMs = []string{req.DPM}
	}
	cfg, err := s.parseFleetConfig(freq)
	if err != nil {
		s.rRun.failures.Inc()
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	// cfg passed fleet.Validate above, so Hash cannot fail here.
	scope, _ := cfg.Hash()
	key, err := idemKey(r, "run", scope, body)
	if err != nil {
		s.rRun.failures.Inc()
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	s.serveIdempotent(w, r, &s.rRun, key, func() response {
		ctx, cancel := s.requestCtx(r, req.TimeoutMS)
		defer cancel()
		release, err := s.admit(ctx)
		if err != nil {
			return s.admitResponse(err)
		}
		defer release()
		rep, err := s.engineFleet(ctx, cfg)
		if err != nil {
			if ctx.Err() != nil {
				s.cCanceled.Inc()
				return cancelledResponse()
			}
			return respJSON(http.StatusInternalServerError, errorResponse{Status: "error", Error: err.Error()})
		}
		return respJSON(http.StatusOK, RunResponse{Status: "ok", Badge: badgeJSON(rep.Badges[0])})
	})
}

func (s *Server) handleThresholds(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	defer observeLatency(&s.rThr, start)
	s.rThr.requests.Inc()
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	body, ok := s.readBody(w, r, &s.rThr)
	if !ok {
		return
	}
	var req ThresholdsRequest
	if err := decodeBytes(body, &req); err != nil {
		s.rThr.failures.Inc()
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	cfg := changepoint.DefaultConfig(req.Rates)
	if req.WindowSize > 0 {
		cfg.WindowSize = req.WindowSize
	}
	if req.Confidence > 0 {
		cfg.Confidence = req.Confidence
	}
	if req.CharacterisationWindows > 0 {
		cfg.CharacterisationWindows = req.CharacterisationWindows
	}
	if req.Seed != 0 {
		cfg.Seed = req.Seed
	}
	if err := cfg.Validate(); err != nil {
		s.rThr.failures.Inc()
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	// Thresholds have no fleet config hash; the body hash inside the key
	// already pins every knob.
	key, err := idemKey(r, "thresholds", "", body)
	if err != nil {
		s.rThr.failures.Inc()
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	s.serveIdempotent(w, r, &s.rThr, key, func() response {
		ctx, cancel := s.requestCtx(r, req.TimeoutMS)
		defer cancel()
		release, err := s.admit(ctx)
		if err != nil {
			return s.admitResponse(err)
		}
		defer release()
		// The characterisation itself is not context-aware (it is the cached,
		// offline Monte Carlo step); the deadline covers queue wait, and a
		// characterisation that outlives its requester still warms the cache.
		th, err := s.characterise(cfg)
		if err != nil {
			return respJSON(http.StatusInternalServerError, errorResponse{Status: "error", Error: err.Error()})
		}
		if ctx.Err() != nil {
			s.cCanceled.Inc()
			return cancelledResponse()
		}
		set := th.Snapshot()
		return respJSON(http.StatusOK, ThresholdsResponse{
			Status:     "ok",
			WindowSize: set.WindowSize,
			Confidence: set.Confidence,
			Ratios:     set.Ratios,
			Values:     set.Values,
		})
	})
}

// healthResponse is the /healthz body. InFlight/Queued are point-in-time
// transport state — /healthz is outside the byte-identity contract.
type healthResponse struct {
	Status   string `json:"status"`
	InFlight int64  `json:"in_flight"`
	Queued   int64  `json:"queued"`
}
