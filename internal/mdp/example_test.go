package mdp_test

import (
	"fmt"
	"log"

	"smartbadge/internal/mdp"
)

// Solve the queue-aware optimal DVS policy for a two-speed processor: the
// optimal policy is a switching curve — slow while the buffer is shallow,
// fast once it backs up.
func Example() {
	cfg := mdp.Config{
		Lambda:       20,                   // frames/s arriving
		Mu:           []float64{40, 80},    // slow and fast service rates
		PowerW:       []float64{0.08, 0.4}, // and their powers
		IdlePowerW:   0.17,
		DelayWeightW: 0.1, // watts charged per buffered frame
		QueueCap:     30,
	}
	pol, err := mdp.Solve(cfg)
	if err != nil {
		log.Fatal(err)
	}
	switchAt := -1
	for n := 1; n <= cfg.QueueCap; n++ {
		if pol.Action[n] == 1 {
			switchAt = n
			break
		}
	}
	fmt.Printf("slow until the buffer reaches %d frames, then fast\n", switchAt)

	// The optimum beats both fixed speeds on the same objective.
	slow, _ := mdp.EvaluatePolicy(cfg, mdp.FixedPolicy(cfg, 0))
	fast, _ := mdp.EvaluatePolicy(cfg, mdp.FixedPolicy(cfg, 1))
	fmt.Printf("optimal beats fixed-slow and fixed-fast: %v\n",
		pol.AvgCostW <= slow && pol.AvgCostW <= fast)
	// Output:
	// slow until the buffer reaches 3 frames, then fast
	// optimal beats fixed-slow and fixed-fast: true
}
