package mdp

import (
	"math"
	"testing"

	"smartbadge/internal/perfmodel"
	"smartbadge/internal/sa1100"
)

// sa1100Config builds the MDP inputs from the real ladder and an application
// decode rate at maximum frequency.
func sa1100Config(lambda, decodeMax, beta float64, k int) Config {
	proc := sa1100.Default()
	curve := perfmodel.MP3Curve()
	fMax := proc.Max().FrequencyMHz
	mu := make([]float64, proc.NumPoints())
	pw := make([]float64, proc.NumPoints())
	for i, p := range proc.Points() {
		mu[i] = decodeMax * curve.PerfRatio(p.FrequencyMHz/fMax)
		pw[i] = p.ActivePowerW
	}
	return Config{
		Lambda:       lambda,
		Mu:           mu,
		PowerW:       pw,
		IdlePowerW:   proc.IdlePowerW(),
		DelayWeightW: beta,
		QueueCap:     k,
	}
}

func TestConfigValidation(t *testing.T) {
	good := sa1100Config(20, 110, 0.5, 30)
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	mutations := []func(*Config){
		func(c *Config) { c.Lambda = 0 },
		func(c *Config) { c.Mu = nil },
		func(c *Config) { c.Mu = c.Mu[:len(c.Mu)-1] },
		func(c *Config) { c.Mu[2] = c.Mu[1] },
		func(c *Config) { c.PowerW[0] = -1 },
		func(c *Config) { c.PowerW[3] = c.PowerW[4] + 1 },
		func(c *Config) { c.Lambda = c.Mu[len(c.Mu)-1] + 1 },
		func(c *Config) { c.IdlePowerW = -1 },
		func(c *Config) { c.DelayWeightW = -1 },
		func(c *Config) { c.QueueCap = 1 },
	}
	for i, mutate := range mutations {
		cfg := sa1100Config(20, 110, 0.5, 30)
		cfg.Mu = append([]float64(nil), cfg.Mu...)
		cfg.PowerW = append([]float64(nil), cfg.PowerW...)
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("mutation %d: expected error", i)
		}
	}
}

func TestSolveMonotoneSwitchingCurve(t *testing.T) {
	cfg := sa1100Config(25, 110, 0.3, 40)
	p, err := Solve(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for n := 2; n <= cfg.QueueCap; n++ {
		if p.Action[n] < p.Action[n-1] {
			t.Fatalf("switching curve not monotone: action[%d]=%d < action[%d]=%d",
				n, p.Action[n], n-1, p.Action[n-1])
		}
	}
	// It should actually use more than one rung (otherwise the MDP adds
	// nothing over a fixed frequency).
	if p.Action[1] == p.Action[cfg.QueueCap] {
		t.Error("policy uses a single frequency; expected a switching curve")
	}
	if p.Iterations == 0 || p.AvgCostW <= 0 {
		t.Error("implausible solver metadata")
	}
}

func TestDelayWeightExtremes(t *testing.T) {
	// Tiny delay weight: delay is free, so run as slow as sustainability
	// allows at every backlog.
	cheap, err := Solve(sa1100Config(20, 110, 1e-6, 40))
	if err != nil {
		t.Fatal(err)
	}
	// Huge delay weight: backlog is ruinous, so high states run flat out.
	urgent, err := Solve(sa1100Config(20, 110, 100, 40))
	if err != nil {
		t.Fatal(err)
	}
	nA := len(sa1100Config(20, 110, 1, 4).Mu)
	if urgent.Action[40] != nA-1 {
		t.Errorf("urgent policy tops out at %d, want fastest %d", urgent.Action[40], nA-1)
	}
	if cheap.Action[1] > urgent.Action[1] {
		t.Error("cheap-delay policy should start slower than urgent policy")
	}
	// Mean queue under the cheap policy exceeds the urgent policy's.
	lCheap, err := MeanQueueLength(sa1100Config(20, 110, 1e-6, 40), cheap.Action)
	if err != nil {
		t.Fatal(err)
	}
	lUrgent, err := MeanQueueLength(sa1100Config(20, 110, 100, 40), urgent.Action)
	if err != nil {
		t.Fatal(err)
	}
	if lCheap <= lUrgent {
		t.Errorf("queue lengths: cheap %v should exceed urgent %v", lCheap, lUrgent)
	}
}

// The solver's reported average cost is computed by the exact birth-death
// evaluation, so it must beat every fixed-frequency policy on the same
// objective (up to a whisker of numerical tolerance).
func TestOptimalBeatsAllFixedFrequencies(t *testing.T) {
	cfg := sa1100Config(25, 110, 0.4, 40)
	p, err := Solve(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for a := 0; a < len(cfg.Mu); a++ {
		if cfg.Mu[a] <= cfg.Lambda {
			continue // unstable fixed policy: skip (finite K keeps it defined, but allow it anyway)
		}
		fixed, err := EvaluatePolicy(cfg, FixedPolicy(cfg, a))
		if err != nil {
			t.Fatal(err)
		}
		if p.AvgCostW > fixed*(1+1e-9) {
			t.Errorf("optimal cost %v exceeds fixed-frequency[%d] cost %v", p.AvgCostW, a, fixed)
		}
	}
}

// Cross-check value iteration's claimed optimality: perturbing the policy at
// any single state cannot reduce the exact average cost.
func TestLocalOptimality(t *testing.T) {
	cfg := sa1100Config(22, 110, 0.5, 25)
	p, err := Solve(cfg)
	if err != nil {
		t.Fatal(err)
	}
	base, err := EvaluatePolicy(cfg, p.Action)
	if err != nil {
		t.Fatal(err)
	}
	for n := 1; n <= cfg.QueueCap; n++ {
		for a := 0; a < len(cfg.Mu); a++ {
			if a == p.Action[n] {
				continue
			}
			alt := append([]int(nil), p.Action...)
			alt[n] = a
			c, err := EvaluatePolicy(cfg, alt)
			if err != nil {
				t.Fatal(err)
			}
			if c < base*(1-1e-9) {
				t.Fatalf("perturbing state %d to action %d improves cost: %v < %v", n, a, c, base)
			}
		}
	}
}

func TestEvaluatePolicyErrors(t *testing.T) {
	cfg := sa1100Config(20, 110, 0.5, 10)
	if _, err := EvaluatePolicy(cfg, []int{0}); err == nil {
		t.Error("wrong-length policy accepted")
	}
	bad := FixedPolicy(cfg, 0)
	bad[3] = 99
	if _, err := EvaluatePolicy(cfg, bad); err == nil {
		t.Error("out-of-range action accepted")
	}
	if _, err := MeanQueueLength(cfg, []int{0}); err == nil {
		t.Error("wrong-length policy accepted by MeanQueueLength")
	}
}

func TestSolveConvergenceGuard(t *testing.T) {
	cfg := sa1100Config(20, 110, 0.5, 30)
	cfg.MaxIterations = 3
	cfg.Epsilon = 1e-15
	if _, err := Solve(cfg); err == nil {
		t.Error("expected non-convergence error with 3 iterations")
	}
}

// Sanity: with a single sustainable rung, the MDP must agree with the
// analytic M/M/1/K average cost at that rung.
func TestSingleActionMatchesAnalytic(t *testing.T) {
	cfg := Config{
		Lambda:       10,
		Mu:           []float64{25},
		PowerW:       []float64{0.3},
		IdlePowerW:   0.1,
		DelayWeightW: 0.2,
		QueueCap:     60,
	}
	p, err := Solve(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Analytic: ρ=0.4, π_0 = 1-ρ (K large): cost = π_0·P_idle + (1-π_0)·P + β·L.
	rho := 0.4
	l := rho / (1 - rho)
	want := (1-rho)*cfg.IdlePowerW + rho*cfg.PowerW[0] + cfg.DelayWeightW*l
	if math.Abs(p.AvgCostW-want)/want > 1e-3 {
		t.Errorf("avg cost %v, analytic %v", p.AvgCostW, want)
	}
}
