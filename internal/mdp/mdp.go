// Package mdp computes the queue-aware optimal DVS policy the paper's model
// implies but its heuristic does not fully exploit. The paper expands the
// active state into frequency/voltage sub-states (Figure 8) and notes that
// "the full optimization model should not only decide when to transition the
// device into one of the low-power states but should also perform dynamic
// voltage scaling in the active state"; its implemented policy then picks a
// single frequency per (λU, λD) pair via the M/M/1 constant-delay inversion.
// The full stochastic-control answer conditions on the *queue length*: run
// slower when the buffer is nearly empty, faster as it fills.
//
// Model. State n = frames in the system, 0..K (the finite frame buffer).
// Action a = an SA-1100 ladder index, controlling the service rate µ(a) and
// the decode power P(a). Arrivals are Poisson at λ. The instantaneous cost
// rate is P(a)·1{n>0} + P_idle·1{n=0} + β·n, where β (watts per buffered
// frame) prices delay via Little's law: a mean queue of L frames is a mean
// delay of L/λ seconds, so β = w·λ charges w joules per frame-second of
// delay.
//
// Solution. The continuous-time MDP is uniformised at Λ = λ + max µ and
// solved by relative value iteration for the average-cost criterion. The
// optimal stationary policy is a monotone switching curve: the action index
// is non-decreasing in the queue length (verified by the tests, together
// with agreement between the solver's average cost and the birth-death
// steady-state evaluation of the same policy).
package mdp

import (
	"fmt"
	"math"

	"smartbadge/internal/markov"
	"smartbadge/internal/sa1100"
)

// Config describes the controlled queue.
type Config struct {
	// Lambda is the Poisson arrival rate (frames/s).
	Lambda float64
	// Mu[a] is the service rate under action a (frames/s), ascending.
	Mu []float64
	// PowerW[a] is the decode power drawn under action a (watts).
	PowerW []float64
	// IdlePowerW is drawn when the queue is empty.
	IdlePowerW float64
	// DelayWeightW is β: watts charged per buffered frame.
	DelayWeightW float64
	// QueueCap is K, the largest queue length modelled.
	QueueCap int
	// Epsilon is the relative-value-iteration stopping span (J/s).
	// Zero selects 1e-9.
	Epsilon float64
	// MaxIterations bounds value iteration. Zero selects 1e6.
	MaxIterations int
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Lambda <= 0 {
		return fmt.Errorf("mdp: arrival rate must be positive, got %v", c.Lambda)
	}
	if len(c.Mu) == 0 || len(c.Mu) != len(c.PowerW) {
		return fmt.Errorf("mdp: need matching non-empty Mu and PowerW, got %d and %d", len(c.Mu), len(c.PowerW))
	}
	for i := range c.Mu {
		if c.Mu[i] <= 0 || c.PowerW[i] < 0 {
			return fmt.Errorf("mdp: invalid action %d (µ=%v, P=%v)", i, c.Mu[i], c.PowerW[i])
		}
		if i > 0 && (c.Mu[i] <= c.Mu[i-1] || c.PowerW[i] < c.PowerW[i-1]) {
			return fmt.Errorf("mdp: actions must have ascending rates and non-decreasing powers at %d", i)
		}
	}
	if c.Mu[len(c.Mu)-1] <= c.Lambda {
		return fmt.Errorf("mdp: fastest action (%v) cannot sustain arrivals (%v)", c.Mu[len(c.Mu)-1], c.Lambda)
	}
	if c.IdlePowerW < 0 || c.DelayWeightW < 0 {
		return fmt.Errorf("mdp: negative idle power or delay weight")
	}
	if c.QueueCap < 2 {
		return fmt.Errorf("mdp: queue capacity must be >= 2, got %d", c.QueueCap)
	}
	return nil
}

// Policy is the solved stationary policy.
type Policy struct {
	// Action[n] is the optimal ladder index when n frames are queued
	// (Action[0] is immaterial — nothing is being served — and set to
	// Action[1] for convenience).
	Action []int
	// AvgCostW is the optimal average cost rate (watts, including the delay
	// charge).
	AvgCostW float64
	// Iterations taken by relative value iteration.
	Iterations int
	cfg        Config
}

// Solve runs relative value iteration and returns the optimal policy.
func Solve(cfg Config) (*Policy, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	eps := cfg.Epsilon
	if eps == 0 {
		eps = 1e-9
	}
	maxIter := cfg.MaxIterations
	if maxIter == 0 {
		maxIter = 1_000_000
	}
	nStates := cfg.QueueCap + 1
	nActions := len(cfg.Mu)
	muMax := cfg.Mu[nActions-1]
	uni := cfg.Lambda + muMax // uniformisation constant

	cost := func(n, a int) float64 {
		c := cfg.DelayWeightW * float64(n)
		if n == 0 {
			return c + cfg.IdlePowerW
		}
		return c + cfg.PowerW[a]
	}

	v := make([]float64, nStates)
	nv := make([]float64, nStates)
	policy := make([]int, nStates)
	var span float64
	it := 0
	for ; it < maxIter; it++ {
		for n := 0; n < nStates; n++ {
			up := n + 1
			if up > cfg.QueueCap {
				up = cfg.QueueCap // arrivals beyond K are dropped
			}
			if n == 0 {
				// No service; the action is irrelevant.
				nv[n] = cost(0, 0)/uni + (cfg.Lambda*v[up]+(uni-cfg.Lambda)*v[0])/uni
				continue
			}
			best := math.Inf(1)
			bestA := 0
			for a := 0; a < nActions; a++ {
				mu := cfg.Mu[a]
				q := cost(n, a)/uni +
					(cfg.Lambda*v[up]+mu*v[n-1]+(uni-cfg.Lambda-mu)*v[n])/uni
				if q < best {
					best, bestA = q, a
				}
			}
			nv[n] = best
			policy[n] = bestA
		}
		// Relative value iteration: subtract nv[0] and test the span of the
		// increment for convergence.
		minD, maxD := math.Inf(1), math.Inf(-1)
		for n := 0; n < nStates; n++ {
			d := nv[n] - v[n]
			if d < minD {
				minD = d
			}
			if d > maxD {
				maxD = d
			}
		}
		span = maxD - minD
		ref := nv[0]
		for n := 0; n < nStates; n++ {
			v[n] = nv[n] - ref
		}
		if span < eps/uni {
			it++
			break
		}
	}
	if span >= eps/uni && it == maxIter {
		return nil, fmt.Errorf("mdp: value iteration did not converge within %d iterations (span %v)", maxIter, span*uni)
	}
	policy[0] = policy[1]
	p := &Policy{Action: policy, Iterations: it, cfg: cfg}
	avg, err := EvaluatePolicy(cfg, policy)
	if err != nil {
		return nil, err
	}
	p.AvgCostW = avg
	return p, nil
}

// EvaluatePolicy computes the exact average cost rate of any stationary
// queue-length policy via the induced birth-death chain's steady state.
func EvaluatePolicy(cfg Config, action []int) (float64, error) {
	if err := cfg.Validate(); err != nil {
		return 0, err
	}
	if len(action) != cfg.QueueCap+1 {
		return 0, fmt.Errorf("mdp: policy has %d entries, want %d", len(action), cfg.QueueCap+1)
	}
	birth := make([]float64, cfg.QueueCap)
	death := make([]float64, cfg.QueueCap)
	for n := 0; n < cfg.QueueCap; n++ {
		birth[n] = cfg.Lambda
		a := action[n+1]
		if a < 0 || a >= len(cfg.Mu) {
			return 0, fmt.Errorf("mdp: action %d out of range at state %d", a, n+1)
		}
		death[n] = cfg.Mu[a]
	}
	chain, err := markov.NewBirthDeath(birth, death)
	if err != nil {
		return 0, err
	}
	pi := chain.SteadyState()
	total := 0.0
	for n, p := range pi {
		c := cfg.DelayWeightW * float64(n)
		if n == 0 {
			c += cfg.IdlePowerW
		} else {
			c += cfg.PowerW[action[n]]
		}
		total += p * c
	}
	return total, nil
}

// Ladder binds the solved policy to a processor's operating points,
// yielding the queue-length → operating-point map the simulator consumes
// (sim.Config.QueuePolicy).
func (p *Policy) Ladder(proc *sa1100.Processor) (*LadderPolicy, error) {
	if proc == nil {
		return nil, fmt.Errorf("mdp: nil processor")
	}
	if proc.NumPoints() != len(p.cfg.Mu) {
		return nil, fmt.Errorf("mdp: policy solved over %d actions, processor has %d points",
			len(p.cfg.Mu), proc.NumPoints())
	}
	return &LadderPolicy{actions: p.Action, proc: proc}, nil
}

// LadderPolicy maps buffer occupancy to an SA-1100 operating point.
type LadderPolicy struct {
	actions []int
	proc    *sa1100.Processor
}

// OperatingPointFor implements the simulator's QueuePolicy interface.
// Occupancies beyond the solved queue cap use the deepest state's action.
func (l *LadderPolicy) OperatingPointFor(queueLen int) sa1100.OperatingPoint {
	if queueLen < 0 {
		queueLen = 0
	}
	if queueLen >= len(l.actions) {
		queueLen = len(l.actions) - 1
	}
	return l.proc.Point(l.actions[queueLen])
}

// FixedPolicy returns the policy that always uses ladder index a.
func FixedPolicy(cfg Config, a int) []int {
	p := make([]int, cfg.QueueCap+1)
	for i := range p {
		p[i] = a
	}
	return p
}

// MeanQueueLength returns E[N] under a policy's steady state.
func MeanQueueLength(cfg Config, action []int) (float64, error) {
	if err := cfg.Validate(); err != nil {
		return 0, err
	}
	if len(action) != cfg.QueueCap+1 {
		return 0, fmt.Errorf("mdp: policy has %d entries, want %d", len(action), cfg.QueueCap+1)
	}
	birth := make([]float64, cfg.QueueCap)
	death := make([]float64, cfg.QueueCap)
	for n := 0; n < cfg.QueueCap; n++ {
		birth[n] = cfg.Lambda
		death[n] = cfg.Mu[action[n+1]]
	}
	chain, err := markov.NewBirthDeath(birth, death)
	if err != nil {
		return 0, err
	}
	mean := 0.0
	for n, p := range chain.SteadyState() {
		mean += float64(n) * p
	}
	return mean, nil
}
