// Package prof wraps runtime/pprof CPU profiling behind the -cpuprofile
// flag the command-line tools share, so profiling a characterisation or a
// sweep is one flag rather than a recompile.
package prof

import (
	"fmt"
	"os"
	"runtime/pprof"
)

// WithCPUProfile runs f under a CPU profile written to path. An empty path
// runs f unprofiled. The profile is flushed and the file closed before
// returning, even when f fails.
func WithCPUProfile(path string, f func() error) error {
	if path == "" {
		return f()
	}
	file, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("prof: create %s: %w", path, err)
	}
	defer file.Close()
	if err := pprof.StartCPUProfile(file); err != nil {
		return fmt.Errorf("prof: start profile: %w", err)
	}
	defer pprof.StopCPUProfile()
	return f()
}
