package prof

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func TestEmptyPathRunsUnprofiled(t *testing.T) {
	ran := false
	if err := WithCPUProfile("", func() error { ran = true; return nil }); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Error("f not called")
	}
}

func TestWritesProfile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cpu.prof")
	if err := WithCPUProfile(path, func() error {
		// Burn a little CPU so the profile has something to sample.
		x := 0.0
		for i := 0; i < 1<<18; i++ {
			x += float64(i)
		}
		_ = x
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Size() == 0 {
		t.Error("profile file is empty")
	}
}

func TestPropagatesErrorAndStillStopsProfile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cpu.prof")
	want := errors.New("boom")
	if err := WithCPUProfile(path, func() error { return want }); !errors.Is(err, want) {
		t.Fatalf("err = %v, want %v", err, want)
	}
	// The profile must have been stopped: a second profiled run succeeds.
	if err := WithCPUProfile(filepath.Join(t.TempDir(), "cpu2.prof"), func() error { return nil }); err != nil {
		t.Fatal(err)
	}
}

func TestBadPathFails(t *testing.T) {
	if err := WithCPUProfile(filepath.Join(t.TempDir(), "no/such/dir/cpu.prof"), func() error { return nil }); err == nil {
		t.Error("unwritable path accepted")
	}
}
