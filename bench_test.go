// Benchmark harness: one benchmark per table and figure of the paper
// (regenerating the artifact and reporting its headline numbers as custom
// metrics), the ablation benchmarks DESIGN.md commits to, and
// micro-benchmarks of the hot paths.
//
// Run everything with:
//
//	go test -bench=. -benchmem
package smartbadge

import (
	"fmt"
	"testing"

	"smartbadge/internal/changepoint"
	"smartbadge/internal/device"
	"smartbadge/internal/dpm"
	"smartbadge/internal/experiments"
	"smartbadge/internal/fleet"
	"smartbadge/internal/perfmodel"
	"smartbadge/internal/policy"
	"smartbadge/internal/queue"
	"smartbadge/internal/sa1100"
	"smartbadge/internal/sim"
	"smartbadge/internal/stats"
	"smartbadge/internal/thrcache"
	"smartbadge/internal/tismdp"
	"smartbadge/internal/workload"
)

// --- Table and figure benchmarks -----------------------------------------

// BenchmarkTable1Device regenerates the SmartBadge component table.
func BenchmarkTable1Device(b *testing.B) {
	var total float64
	for i := 0; i < b.N; i++ {
		rows := experiments.Table1()
		total = rows[len(rows)-1].ActiveMW
	}
	b.ReportMetric(total, "total_active_mW")
}

// BenchmarkFig3FrequencyVoltage regenerates the SA-1100 V(f) curve.
func BenchmarkFig3FrequencyVoltage(b *testing.B) {
	var vmax float64
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig3()
		vmax = rows[len(rows)-1].VoltageV
	}
	b.ReportMetric(vmax, "v_at_fmax")
}

// BenchmarkFig4MP3Curve regenerates the MP3 performance/energy curve.
func BenchmarkFig4MP3Curve(b *testing.B) {
	var perfHalf float64
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig4()
		perfHalf = rows[3].PerfRatio
	}
	b.ReportMetric(perfHalf, "perf_at_103MHz")
}

// BenchmarkFig5MPEGCurve regenerates the MPEG performance/energy curve.
func BenchmarkFig5MPEGCurve(b *testing.B) {
	var eMin float64
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig5()
		eMin = rows[0].EnergyRatio
	}
	b.ReportMetric(eMin, "energy_ratio_at_fmin")
}

// BenchmarkFig6ArrivalFit regenerates the exponential interarrival fit.
func BenchmarkFig6ArrivalFit(b *testing.B) {
	var errPct float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig6(uint64(i) + 1)
		if err != nil {
			b.Fatal(err)
		}
		errPct = r.MeanAbsError * 100
	}
	b.ReportMetric(errPct, "fit_error_%")
}

// BenchmarkFig9RateFrequency regenerates the rate-vs-frequency sweep.
func BenchmarkFig9RateFrequency(b *testing.B) {
	var top float64
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig9()
		top = rows[len(rows)-1].WLANRate
	}
	b.ReportMetric(top, "wlan_rate_at_fmax")
}

// BenchmarkFig10Detection regenerates the detection transient.
func BenchmarkFig10Detection(b *testing.B) {
	var latency float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig10(uint64(i) + 1)
		if err != nil {
			b.Fatal(err)
		}
		latency = float64(r.ChangePointLatency)
	}
	b.ReportMetric(latency, "cp_latency_frames")
}

// BenchmarkTable2Clips regenerates the MP3 clip catalogue.
func BenchmarkTable2Clips(b *testing.B) {
	var rate float64
	for i := 0; i < b.N; i++ {
		rows := experiments.Table2()
		rate = rows[0].DecodeRate
	}
	b.ReportMetric(rate, "clipA_decode_rate")
}

// BenchmarkTable3MP3DVS regenerates the MP3 DVS comparison and reports the
// change-point-vs-max energy saving.
func BenchmarkTable3MP3DVS(b *testing.B) {
	var saving float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table3(uint64(i) + 1)
		if err != nil {
			b.Fatal(err)
		}
		cells := rows[0].Cells
		saving = 1 - cells[1].EnergyKJ/cells[3].EnergyKJ // CP vs Max
	}
	b.ReportMetric(saving*100, "cp_saving_vs_max_%")
}

// BenchmarkTable4MPEGDVS regenerates the MPEG DVS comparison.
func BenchmarkTable4MPEGDVS(b *testing.B) {
	var saving float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table4(uint64(i) + 1)
		if err != nil {
			b.Fatal(err)
		}
		cells := rows[0].Cells
		saving = 1 - cells[1].EnergyKJ/cells[3].EnergyKJ
	}
	b.ReportMetric(saving*100, "cp_saving_vs_max_%")
}

// BenchmarkTable5Combined regenerates the DVS+DPM comparison and reports the
// combined saving factor (the paper's headline "factor of three").
func BenchmarkTable5Combined(b *testing.B) {
	var factor float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table5(uint64(i) + 1)
		if err != nil {
			b.Fatal(err)
		}
		factor = rows[3].Factor // Both
	}
	b.ReportMetric(factor, "combined_factor")
}

// --- Ablation benchmarks ---------------------------------------------------

// ablationTrace is the common MP3 workload for detector ablations.
func ablationTrace(b *testing.B, seed uint64) *workload.Trace {
	b.Helper()
	clips, err := workload.MP3Sequence("ACEFBD")
	if err != nil {
		b.Fatal(err)
	}
	tr, err := workload.Generate(stats.NewRNG(seed), clips, workload.GenerateOptions{})
	if err != nil {
		b.Fatal(err)
	}
	return tr
}

// runDetectorAblation simulates the Table 3 scenario with a mutated
// change-point configuration and reports energy and delay.
func runDetectorAblation(b *testing.B, mutate func(*changepoint.Config)) {
	b.Helper()
	app := experiments.MP3App()
	mkEst := func(grid []float64, initial float64) policy.Estimator {
		cfg := changepoint.DefaultConfig(grid)
		cfg.CharacterisationWindows = 1500
		mutate(&cfg)
		th, err := changepoint.Characterise(cfg)
		if err != nil {
			b.Fatal(err)
		}
		det, err := changepoint.NewDetector(cfg, th, initial)
		if err != nil {
			b.Fatal(err)
		}
		return policy.NewChangePoint(det)
	}
	tr := ablationTrace(b, 1)
	first := tr.Changes[0]
	var energy, delay float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctrl, err := policy.NewController(sa1100.Default(), app.Curve, app.TargetDelay,
			mkEst(app.ArrivalGrid, first.ArrivalRate),
			mkEst(app.ServiceGrid, first.DecodeRateMax), false)
		if err != nil {
			b.Fatal(err)
		}
		ctrl.ResetRates(first.ArrivalRate, first.DecodeRateMax)
		res, err := sim.Run(sim.Config{
			Badge: device.SmartBadge(), Proc: sa1100.Default(),
			Trace: tr, Controller: ctrl, Kind: workload.MP3,
		})
		if err != nil {
			b.Fatal(err)
		}
		energy, delay = res.EnergyJ, res.FrameDelay.Mean()
	}
	b.ReportMetric(energy, "J")
	b.ReportMetric(delay*1000, "delay_ms")
}

// BenchmarkAblationWindowSize varies the detector window m (paper: 100).
func BenchmarkAblationWindowSize(b *testing.B) {
	for _, m := range []int{50, 100, 200} {
		b.Run(fmt.Sprintf("m=%d", m), func(b *testing.B) {
			runDetectorAblation(b, func(c *changepoint.Config) { c.WindowSize = m })
		})
	}
}

// BenchmarkAblationCheckInterval varies the check interval k.
func BenchmarkAblationCheckInterval(b *testing.B) {
	for _, k := range []int{1, 5, 20} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			runDetectorAblation(b, func(c *changepoint.Config) { c.CheckInterval = k })
		})
	}
}

// BenchmarkAblationConfidence varies the detection confidence (paper: 99.5%).
func BenchmarkAblationConfidence(b *testing.B) {
	for _, conf := range []float64{0.95, 0.995, 0.9995} {
		b.Run(fmt.Sprintf("conf=%.4v", conf), func(b *testing.B) {
			runDetectorAblation(b, func(c *changepoint.Config) { c.Confidence = conf })
		})
	}
}

// BenchmarkAblationRateGrid varies the candidate rate grid resolution.
func BenchmarkAblationRateGrid(b *testing.B) {
	for _, n := range []int{4, 8, 16} {
		b.Run(fmt.Sprintf("grid=%d", n), func(b *testing.B) {
			app := experiments.MP3App()
			arr, err := changepoint.GeometricRates(6, 44, n)
			if err != nil {
				b.Fatal(err)
			}
			srv, err := changepoint.GeometricRates(60, 150, n)
			if err != nil {
				b.Fatal(err)
			}
			app.ArrivalGrid, app.ServiceGrid = arr, srv
			runDetectorAblationWithGrids(b, app)
		})
	}
}

func runDetectorAblationWithGrids(b *testing.B, app experiments.App) {
	b.Helper()
	tr := ablationTrace(b, 1)
	first := tr.Changes[0]
	mkEst := func(grid []float64, initial float64) policy.Estimator {
		cfg := changepoint.DefaultConfig(grid)
		cfg.CharacterisationWindows = 1500
		th, err := changepoint.Characterise(cfg)
		if err != nil {
			b.Fatal(err)
		}
		det, err := changepoint.NewDetector(cfg, th, initial)
		if err != nil {
			b.Fatal(err)
		}
		return policy.NewChangePoint(det)
	}
	var energy float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctrl, err := policy.NewController(sa1100.Default(), app.Curve, app.TargetDelay,
			mkEst(app.ArrivalGrid, first.ArrivalRate),
			mkEst(app.ServiceGrid, first.DecodeRateMax), false)
		if err != nil {
			b.Fatal(err)
		}
		ctrl.ResetRates(first.ArrivalRate, first.DecodeRateMax)
		res, err := sim.Run(sim.Config{
			Badge: device.SmartBadge(), Proc: sa1100.Default(),
			Trace: tr, Controller: ctrl, Kind: workload.MP3,
		})
		if err != nil {
			b.Fatal(err)
		}
		energy = res.EnergyJ
	}
	b.ReportMetric(energy, "J")
}

// BenchmarkAblationSwitchOverhead varies the frequency-switch latency
// (the OCR-ambiguous constant; default 150 µs).
func BenchmarkAblationSwitchOverhead(b *testing.B) {
	for _, lat := range []float64{0, 150e-6, 1e-3, 5e-3} {
		b.Run(fmt.Sprintf("latency=%v", lat), func(b *testing.B) {
			cfg := sa1100.DefaultConfig()
			cfg.SwitchLatency = lat
			proc := sa1100.MustNew(cfg)
			tr := ablationTrace(b, 1)
			first := tr.Changes[0]
			var energy, delay float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ctrl, err := policy.NewController(proc, perfmodel.MP3Curve(), 0.15,
					policy.NewIdeal(first.ArrivalRate), policy.NewIdeal(first.DecodeRateMax), false)
				if err != nil {
					b.Fatal(err)
				}
				ctrl.ResetRates(first.ArrivalRate, first.DecodeRateMax)
				res, err := sim.Run(sim.Config{
					Badge: device.SmartBadge(), Proc: proc,
					Trace: tr, Controller: ctrl, Kind: workload.MP3,
				})
				if err != nil {
					b.Fatal(err)
				}
				energy, delay = res.EnergyJ, res.FrameDelay.Mean()
			}
			b.ReportMetric(energy, "J")
			b.ReportMetric(delay*1000, "delay_ms")
		})
	}
}

// BenchmarkAblationDPMPolicies compares idle-state policies on the combined
// workload.
func BenchmarkAblationDPMPolicies(b *testing.B) {
	tr, err := experiments.Table5Workload(1)
	if err != nil {
		b.Fatal(err)
	}
	costs := dpm.CostsForBadge(device.SmartBadge(), device.Standby)
	idleModel := tr.IdleModel()
	policies := map[string]func() (dpm.Policy, error){
		"always-on": func() (dpm.Policy, error) { return dpm.AlwaysOn{}, nil },
		"timeout-be": func() (dpm.Policy, error) {
			return dpm.NewFixedTimeout(costs.BreakEven(), device.Standby)
		},
		"renewal": func() (dpm.Policy, error) {
			return dpm.NewRenewalTimeout(idleModel, costs, device.Standby, 0)
		},
		"tismdp": func() (dpm.Policy, error) {
			return tismdp.Solve(tismdp.Config{Idle: idleModel, Costs: costs, Target: device.Standby})
		},
		"oracle": func() (dpm.Policy, error) { return dpm.NewOracle(costs, device.Standby) },
	}
	for name, mk := range policies {
		b.Run(name, func(b *testing.B) {
			var energy float64
			var sleeps int
			for i := 0; i < b.N; i++ {
				pol, err := mk()
				if err != nil {
					b.Fatal(err)
				}
				res, err := experiments.RunPolicy(experiments.Ideal, experiments.MixedApp(), tr, pol)
				if err != nil {
					b.Fatal(err)
				}
				energy, sleeps = res.EnergyJ, res.Sleeps
			}
			b.ReportMetric(energy, "J")
			b.ReportMetric(float64(sleeps), "sleeps")
		})
	}
}

// BenchmarkAblationDelayTarget sweeps the M/M/1 delay target: the
// energy/latency Pareto curve of the frequency policy.
func BenchmarkAblationDelayTarget(b *testing.B) {
	tr := ablationTrace(b, 1)
	first := tr.Changes[0]
	for _, target := range []float64{0.05, 0.1, 0.15, 0.3, 0.6} {
		b.Run(fmt.Sprintf("W=%.2fs", target), func(b *testing.B) {
			var energy, delay float64
			for i := 0; i < b.N; i++ {
				ctrl, err := policy.NewController(sa1100.Default(), perfmodel.MP3Curve(), target,
					policy.NewIdeal(first.ArrivalRate), policy.NewIdeal(first.DecodeRateMax), false)
				if err != nil {
					b.Fatal(err)
				}
				ctrl.ResetRates(first.ArrivalRate, first.DecodeRateMax)
				res, err := sim.Run(sim.Config{
					Badge: device.SmartBadge(), Proc: sa1100.Default(),
					Trace: tr, Controller: ctrl, Kind: workload.MP3,
				})
				if err != nil {
					b.Fatal(err)
				}
				energy, delay = res.EnergyJ, res.FrameDelay.Mean()
			}
			b.ReportMetric(energy, "J")
			b.ReportMetric(delay*1000, "delay_ms")
		})
	}
}

// BenchmarkAblationHysteresis measures how the downswitch hysteresis tames
// the exponential-average policy's rung dithering on the MP3 workload.
func BenchmarkAblationHysteresis(b *testing.B) {
	tr := ablationTrace(b, 1)
	first := tr.Changes[0]
	for _, h := range []float64{0, 0.05, 0.15} {
		b.Run(fmt.Sprintf("h=%.2f", h), func(b *testing.B) {
			var energy, delay float64
			var switches int
			for i := 0; i < b.N; i++ {
				ctrl, err := policy.NewController(sa1100.Default(), perfmodel.MP3Curve(), 0.15,
					policy.NewExpAverage(experiments.ExpAvgGain, first.ArrivalRate),
					policy.NewExpAverage(experiments.ExpAvgGain, first.DecodeRateMax), false)
				if err != nil {
					b.Fatal(err)
				}
				ctrl.Hysteresis = h
				ctrl.ResetRates(first.ArrivalRate, first.DecodeRateMax)
				res, err := sim.Run(sim.Config{
					Badge: device.SmartBadge(), Proc: sa1100.Default(),
					Trace: tr, Controller: ctrl, Kind: workload.MP3,
				})
				if err != nil {
					b.Fatal(err)
				}
				energy, delay, switches = res.EnergyJ, res.FrameDelay.Mean(), res.Reconfigurations
			}
			b.ReportMetric(energy, "J")
			b.ReportMetric(delay*1000, "delay_ms")
			b.ReportMetric(float64(switches), "switches")
		})
	}
}

// BenchmarkAblationLadderResolution restricts the SA-1100 frequency ladder:
// a 2-point ladder is the classic "dual-speed" CPU, the full 12-point ladder
// is the SA-1100. Finer ladders track the demand more tightly and save more.
func BenchmarkAblationLadderResolution(b *testing.B) {
	full := sa1100.DefaultConfig().FrequenciesMHz
	ladders := map[string][]float64{
		"2-point":  {full[0], full[len(full)-1]},
		"4-point":  {full[0], full[3], full[7], full[len(full)-1]},
		"12-point": full,
	}
	tr := ablationTrace(b, 1)
	first := tr.Changes[0]
	for name, freqs := range ladders {
		b.Run(name, func(b *testing.B) {
			cfg := sa1100.DefaultConfig()
			cfg.FrequenciesMHz = freqs
			proc := sa1100.MustNew(cfg)
			var energy float64
			for i := 0; i < b.N; i++ {
				ctrl, err := policy.NewController(proc, perfmodel.MP3Curve(), 0.15,
					policy.NewIdeal(first.ArrivalRate), policy.NewIdeal(first.DecodeRateMax), false)
				if err != nil {
					b.Fatal(err)
				}
				ctrl.ResetRates(first.ArrivalRate, first.DecodeRateMax)
				res, err := sim.Run(sim.Config{
					Badge: device.SmartBadge(), Proc: proc,
					Trace: tr, Controller: ctrl, Kind: workload.MP3,
				})
				if err != nil {
					b.Fatal(err)
				}
				energy = res.EnergyJ
			}
			b.ReportMetric(energy, "J")
		})
	}
}

// BenchmarkAblationProcessor compares the SA-1100's fine 12-step ladder with
// a successor-generation 4-step (XScale-class) ladder on the same workload,
// assuming both decode the application at the same rate at their respective
// top frequencies.
func BenchmarkAblationProcessor(b *testing.B) {
	procs := map[string]*sa1100.Processor{
		"sa1100-12step": sa1100.Default(),
		"xscale-4step":  sa1100.MustNew(sa1100.XScaleConfig()),
	}
	tr := ablationTrace(b, 1)
	first := tr.Changes[0]
	for name, proc := range procs {
		b.Run(name, func(b *testing.B) {
			var cpuPower, delay float64
			for i := 0; i < b.N; i++ {
				ctrl, err := policy.NewController(proc, perfmodel.MP3Curve(), 0.15,
					policy.NewIdeal(first.ArrivalRate), policy.NewIdeal(first.DecodeRateMax), false)
				if err != nil {
					b.Fatal(err)
				}
				ctrl.ResetRates(first.ArrivalRate, first.DecodeRateMax)
				res, err := sim.Run(sim.Config{
					Badge: device.SmartBadge(), Proc: proc,
					Trace: tr, Controller: ctrl, Kind: workload.MP3,
				})
				if err != nil {
					b.Fatal(err)
				}
				cpuPower = res.EnergyByComponent[device.NameCPU] / res.SimTime
				delay = res.FrameDelay.Mean()
			}
			b.ReportMetric(cpuPower*1000, "cpu_mW")
			b.ReportMetric(delay*1000, "delay_ms")
		})
	}
}

// BenchmarkAblationTwoLevelDPM compares single-level standby policies with
// the two-level standby-then-off family on the combined workload.
func BenchmarkAblationTwoLevelDPM(b *testing.B) {
	tr, err := experiments.Table5Workload(1)
	if err != nil {
		b.Fatal(err)
	}
	badge := device.SmartBadge()
	sby := dpm.CostsForBadge(badge, device.Standby)
	off := dpm.CostsForBadge(badge, device.Off)
	idleModel := tr.IdleModel()
	policies := map[string]func() (dpm.Policy, error){
		"standby-renewal": func() (dpm.Policy, error) {
			return dpm.NewRenewalTimeout(idleModel, sby, device.Standby, 0)
		},
		"twolevel-renewal": func() (dpm.Policy, error) {
			return dpm.NewTwoLevelRenewal(idleModel, sby, off)
		},
		"dual-oracle": func() (dpm.Policy, error) { return dpm.NewDualOracle(sby, off) },
	}
	for name, mk := range policies {
		b.Run(name, func(b *testing.B) {
			var energy float64
			var sleeps, deepens int
			for i := 0; i < b.N; i++ {
				pol, err := mk()
				if err != nil {
					b.Fatal(err)
				}
				res, err := experiments.RunPolicy(experiments.Ideal, experiments.MixedApp(), tr, pol)
				if err != nil {
					b.Fatal(err)
				}
				energy, sleeps, deepens = res.EnergyJ, res.Sleeps, res.Deepens
			}
			b.ReportMetric(energy, "J")
			b.ReportMetric(float64(sleeps), "sleeps")
			b.ReportMetric(float64(deepens), "deepens")
		})
	}
}

// --- Micro-benchmarks -------------------------------------------------------

// BenchmarkDetectorObserve measures the per-sample cost of on-line detection.
func BenchmarkDetectorObserve(b *testing.B) {
	rates, err := changepoint.GeometricRates(10, 60, 8)
	if err != nil {
		b.Fatal(err)
	}
	cfg := changepoint.DefaultConfig(rates)
	cfg.CharacterisationWindows = 500
	th, err := changepoint.Characterise(cfg)
	if err != nil {
		b.Fatal(err)
	}
	det, err := changepoint.NewDetector(cfg, th, 20)
	if err != nil {
		b.Fatal(err)
	}
	rng := stats.NewRNG(1)
	samples := make([]float64, 4096)
	for i := range samples {
		samples[i] = rng.Exp(20)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, changed := det.Observe(samples[i%len(samples)]); changed {
			det.SetRate(20)
		}
	}
}

// BenchmarkCharacterise measures the off-line characterisation cost for one
// rate pair at the paper's settings.
func BenchmarkCharacterise(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := changepoint.DefaultConfig([]float64{10, 60})
		cfg.CharacterisationWindows = 1000
		cfg.Seed = uint64(i) + 1
		if _, err := changepoint.Characterise(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulatorThroughput measures simulated frames per wall second.
func BenchmarkSimulatorThroughput(b *testing.B) {
	tr := ablationTrace(b, 1)
	first := tr.Changes[0]
	frames := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctrl, err := policy.NewController(sa1100.Default(), perfmodel.MP3Curve(), 0.15,
			policy.NewIdeal(first.ArrivalRate), policy.NewIdeal(first.DecodeRateMax), false)
		if err != nil {
			b.Fatal(err)
		}
		ctrl.ResetRates(first.ArrivalRate, first.DecodeRateMax)
		res, err := sim.Run(sim.Config{
			Badge: device.SmartBadge(), Proc: sa1100.Default(),
			Trace: tr, Controller: ctrl, Kind: workload.MP3,
		})
		if err != nil {
			b.Fatal(err)
		}
		frames += res.FramesDecoded
	}
	b.ReportMetric(float64(frames)/b.Elapsed().Seconds(), "frames/s")
}

// BenchmarkMM1 measures the analytic queue math.
func BenchmarkMM1(b *testing.B) {
	var acc float64
	for i := 0; i < b.N; i++ {
		q := queue.MM1{Lambda: float64(i%30 + 1), Mu: 40}
		acc += q.MeanDelay() + q.MeanQueueLength()
	}
	_ = acc
}

// BenchmarkWindowPush measures the detector's sliding-window maintenance.
func BenchmarkWindowPush(b *testing.B) {
	w := stats.NewWindow(100)
	for i := 0; i < b.N; i++ {
		w.Push(float64(i))
	}
}

// BenchmarkTraceGeneration measures workload synthesis.
func BenchmarkTraceGeneration(b *testing.B) {
	clips, err := workload.MP3Sequence("ACEFBD")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, err := workload.Generate(stats.NewRNG(uint64(i)+1), clips, workload.GenerateOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Parallel-engine benchmarks ---------------------------------------------

// BenchmarkCharacteriseParallel measures the off-line characterisation on a
// multi-ratio grid at 1, 2 and 4 workers. The per-ratio Monte Carlo loops are
// independent (index-derived RNG streams), so on a multi-core host the
// speedup tracks the worker count; on a single-core host every width
// degenerates to the serial cost.
func BenchmarkCharacteriseParallel(b *testing.B) {
	rates, err := changepoint.GeometricRates(10, 60, 6)
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("j=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				cfg := changepoint.DefaultConfig(rates)
				cfg.CharacterisationWindows = 1000
				cfg.Seed = uint64(i) + 1
				cfg.Workers = workers
				if _, err := changepoint.Characterise(cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkReplicateParallel measures a seed-replicated experiment (the
// Fig. 6 interarrival fit, one full trace generation + fit per replica) at
// 1, 2 and 4 workers. The Metric is identical at every width.
func BenchmarkReplicateParallel(b *testing.B) {
	const replicas = 8
	f := func(seed uint64) (float64, error) {
		r, err := experiments.Fig6(seed)
		if err != nil {
			return 0, err
		}
		return r.MeanAbsError, nil
	}
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("j=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := experiments.ReplicateWorkers(workers, replicas, uint64(i)+1, f); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Threshold-cache and fleet benchmarks -----------------------------------

// benchCacheConfig is the characterisation workload shared by the cold/warm
// cache benchmarks: a 4-point grid at 1000 null windows, heavy enough that
// the cache speedup is unmistakable, light enough for CI.
func benchCacheConfig(b *testing.B) changepoint.Config {
	b.Helper()
	rates, err := changepoint.GeometricRates(10, 60, 4)
	if err != nil {
		b.Fatal(err)
	}
	cfg := changepoint.DefaultConfig(rates)
	cfg.CharacterisationWindows = 1000
	return cfg
}

// BenchmarkCharacteriseCold measures the cache-miss cost: a full Monte Carlo
// characterisation per iteration.
func BenchmarkCharacteriseCold(b *testing.B) {
	cfg := benchCacheConfig(b)
	for i := 0; i < b.N; i++ {
		if _, err := changepoint.Characterise(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCharacteriseWarm measures the cache-hit cost for the same
// configuration: "mem" hits the in-process LRU, "disk" loads and verifies
// the on-disk entry through a fresh Cache each iteration (simulating a new
// process reusing a populated cache directory).
func BenchmarkCharacteriseWarm(b *testing.B) {
	b.Run("mem", benchWarmMem)
	b.Run("disk", benchWarmDisk)
}

func benchWarmMem(b *testing.B) {
	cfg := benchCacheConfig(b)
	c := thrcache.Memory()
	if _, err := c.Characterise(cfg); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Characterise(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func benchWarmDisk(b *testing.B) {
	cfg := benchCacheConfig(b)
	dir := b.TempDir()
	seedCache, err := thrcache.New(dir, 0)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := seedCache.Characterise(cfg); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c, err := thrcache.New(dir, 0)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := c.Characterise(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFleet measures batch-simulation throughput: an 8-badge MP3 batch
// per iteration, reported as simulations per wall second.
func BenchmarkFleet(b *testing.B) {
	runs := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := fleet.Run(fleet.Config{
			Badges:   8,
			Seed:     uint64(i) + 1,
			Apps:     []string{"mp3"},
			Policies: []experiments.PolicyKind{experiments.ExpAvg},
			DPMs:     []string{"none", "renewal"},
		})
		if err != nil {
			b.Fatal(err)
		}
		runs += rep.Agg.Runs
	}
	b.ReportMetric(float64(runs)/b.Elapsed().Seconds(), "runs/s")
}

// BenchmarkSimHotPath measures the simulator event loop alone — trace and
// controller construction are outside the timed region — so the
// energy-accounting rewrite (indexed component accumulators, cached per-mode
// power vectors, O(1) arrival peek) shows up directly in ns/op and allocs/op.
func BenchmarkSimHotPath(b *testing.B) {
	tr := ablationTrace(b, 1)
	first := tr.Changes[0]
	frames := 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		ctrl, err := policy.NewController(sa1100.Default(), perfmodel.MP3Curve(), 0.15,
			policy.NewIdeal(first.ArrivalRate), policy.NewIdeal(first.DecodeRateMax), false)
		if err != nil {
			b.Fatal(err)
		}
		ctrl.ResetRates(first.ArrivalRate, first.DecodeRateMax)
		s, err := sim.New(sim.Config{
			Badge: device.SmartBadge(), Proc: sa1100.Default(),
			Trace: tr, Controller: ctrl, Kind: workload.MP3,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		res, err := s.Run()
		if err != nil {
			b.Fatal(err)
		}
		frames += res.FramesDecoded
	}
	b.ReportMetric(float64(frames)/b.Elapsed().Seconds(), "frames/s")
}
