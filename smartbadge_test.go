package smartbadge

import (
	"bytes"
	"strings"
	"testing"
)

func TestParsePolicy(t *testing.T) {
	for _, s := range []string{"ideal", "changepoint", "expavg", "max", "IDEAL"} {
		if _, err := ParsePolicy(s); err != nil {
			t.Errorf("ParsePolicy(%q): %v", s, err)
		}
	}
	if _, err := ParsePolicy("bogus"); err == nil {
		t.Error("bogus policy accepted")
	}
}

func TestParseDPM(t *testing.T) {
	for _, s := range []string{"none", "timeout", "renewal", "oracle"} {
		if _, err := ParseDPM(s); err != nil {
			t.Errorf("ParseDPM(%q): %v", s, err)
		}
	}
	if _, err := ParseDPM("bogus"); err == nil {
		t.Error("bogus DPM accepted")
	}
}

func TestParseApplication(t *testing.T) {
	for _, s := range []string{"mp3", "mpeg", "mixed"} {
		if _, err := ParseApplication(s); err != nil {
			t.Errorf("ParseApplication(%q): %v", s, err)
		}
	}
	if _, err := ParseApplication("bogus"); err == nil {
		t.Error("bogus application accepted")
	}
}

func TestTraceConstructors(t *testing.T) {
	if _, err := MP3Trace(1, "ACEFBD"); err != nil {
		t.Errorf("MP3Trace: %v", err)
	}
	if _, err := MP3Trace(1, "XYZ"); err == nil {
		t.Error("bad sequence accepted")
	}
	if _, err := MPEGTrace(1, "football"); err != nil {
		t.Errorf("MPEGTrace: %v", err)
	}
	if _, err := MPEGTrace(1, "t2"); err != nil {
		t.Errorf("MPEGTrace t2: %v", err)
	}
	if _, err := MPEGTrace(1, "casablanca"); err == nil {
		t.Error("unknown clip accepted")
	}
	if _, err := CombinedTrace(1); err != nil {
		t.Errorf("CombinedTrace: %v", err)
	}
}

func TestRunQuickstartPath(t *testing.T) {
	tr, err := MP3Trace(7, "AB")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Options{Application: AppMP3, Policy: PolicyIdeal, Trace: tr})
	if err != nil {
		t.Fatal(err)
	}
	if res.FramesDecoded == 0 || res.EnergyJ <= 0 {
		t.Error("empty result")
	}
	report := FormatResult(res)
	for _, want := range []string{"energy:", "mean frame delay:", "SA-1100"} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

func TestRunDefaults(t *testing.T) {
	tr, err := MP3Trace(8, "A")
	if err != nil {
		t.Fatal(err)
	}
	// Empty options select MP3 + change point + no DPM.
	res, err := Run(Options{Trace: tr})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sleeps != 0 {
		t.Error("default DPM should be none")
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(Options{}); err == nil {
		t.Error("missing trace accepted")
	}
	tr, _ := MP3Trace(9, "A")
	if _, err := Run(Options{Trace: tr, Policy: "bogus"}); err == nil {
		t.Error("bogus policy accepted")
	}
	if _, err := Run(Options{Trace: tr, Application: "bogus"}); err == nil {
		t.Error("bogus application accepted")
	}
	if _, err := Run(Options{Trace: tr, DPM: "bogus"}); err == nil {
		t.Error("bogus DPM accepted")
	}
}

func TestRunWithTimelineAndBufferCap(t *testing.T) {
	cfg := `[{"label":"x","kind":"mpeg","use_default_gop":true,
	          "segments":[{"duration_s":30,"arrival_rate":24,"decode_rate_max":50}]}]`
	tr, err := CustomTrace(3, strings.NewReader(cfg))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Options{
		Application:    AppMPEG,
		Policy:         PolicyIdeal,
		Trace:          tr,
		BufferCap:      8,
		RecordTimeline: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.PeakQueue > 8 {
		t.Errorf("peak queue %d exceeds cap", res.PeakQueue)
	}
	if len(res.Timeline) == 0 {
		t.Fatal("timeline not recorded")
	}
	strip := FormatTimeline(res, 60)
	if !strings.Contains(strip, "decode") {
		t.Error("timeline rendering incomplete")
	}
	if _, err := CustomTrace(1, strings.NewReader("{bad")); err == nil {
		t.Error("bad clip config accepted")
	}
}

func TestRunWithCustomBadge(t *testing.T) {
	var cfg bytes.Buffer
	if err := WriteDefaultBadgeConfig(&cfg); err != nil {
		t.Fatal(err)
	}
	// Halve the radio's listening power and re-run: total energy must drop.
	edited := strings.Replace(cfg.String(), `"idle_mw": 925`, `"idle_mw": 460`, 1)
	if edited == cfg.String() {
		t.Fatalf("badge config did not contain the WLAN idle row:\n%s", cfg.String())
	}
	tr, err := MP3Trace(6, "AB")
	if err != nil {
		t.Fatal(err)
	}
	base, err := Run(Options{Trace: tr, Policy: PolicyIdeal})
	if err != nil {
		t.Fatal(err)
	}
	custom, err := Run(Options{Trace: tr, Policy: PolicyIdeal, BadgeConfig: strings.NewReader(edited)})
	if err != nil {
		t.Fatal(err)
	}
	if custom.EnergyJ >= base.EnergyJ {
		t.Errorf("halved radio power did not reduce energy: %v vs %v", custom.EnergyJ, base.EnergyJ)
	}
	if _, err := Run(Options{Trace: tr, BadgeConfig: strings.NewReader("{bad")}); err == nil {
		t.Error("bad badge config accepted")
	}
}

func TestTraceCSVRoundTripViaFacade(t *testing.T) {
	tr, err := MP3Trace(5, "AB")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteTraceCSV(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTraceCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Frames) != len(tr.Frames) {
		t.Errorf("frames: %d vs %d", len(got.Frames), len(tr.Frames))
	}
}

func TestBatteryLifetime(t *testing.T) {
	tr, err := MP3Trace(12, "A")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Options{Trace: tr, Policy: PolicyIdeal})
	if err != nil {
		t.Fatal(err)
	}
	life, err := BatteryLifetimeHours(res, DefaultBattery())
	if err != nil {
		t.Fatal(err)
	}
	// ~1.3 W from a 2 Wh-class pack: somewhere in the 0.5-3 hour band.
	if life < 0.5 || life > 3 {
		t.Errorf("lifetime = %v h, want 0.5-3 h band", life)
	}
	if _, err := BatteryLifetimeHours(nil, DefaultBattery()); err == nil {
		t.Error("nil result accepted")
	}
	if _, err := BatteryLifetimeHours(res, Battery{}); err == nil {
		t.Error("invalid battery accepted")
	}
}

func TestRunWithDPMModes(t *testing.T) {
	tr, err := CombinedTrace(11)
	if err != nil {
		t.Fatal(err)
	}
	energies := map[DPMMode]float64{}
	for _, mode := range []DPMMode{DPMNone, DPMTimeout, DPMRenewal, DPMTISMDP, DPMOracle} {
		res, err := Run(Options{Application: AppMixed, Policy: PolicyIdeal, DPM: mode, Trace: tr})
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		energies[mode] = res.EnergyJ
		if mode != DPMNone && res.Sleeps == 0 {
			t.Errorf("%s: never slept on the gap-rich combined trace", mode)
		}
	}
	if energies[DPMOracle] > energies[DPMNone] {
		t.Error("oracle DPM worse than none")
	}
	if energies[DPMRenewal] > energies[DPMNone] {
		t.Error("renewal DPM worse than none")
	}
	if energies[DPMTISMDP] > energies[DPMNone] {
		t.Error("TISMDP DPM worse than none")
	}
	// Oracle is the lower bound among the sleeping policies.
	if energies[DPMOracle] > energies[DPMRenewal]*1.001 {
		t.Errorf("oracle %v above renewal %v", energies[DPMOracle], energies[DPMRenewal])
	}
}
