package smartbadge

import (
	"testing"

	"smartbadge/internal/changepoint"
	"smartbadge/internal/device"
	"smartbadge/internal/experiments"
	"smartbadge/internal/policy"
	"smartbadge/internal/sa1100"
	"smartbadge/internal/sim"
	"smartbadge/internal/stats"
	"smartbadge/internal/workload"
)

// TestIncrementalDetectorGoldenRun is the fault-free single-run regression
// for the O(1) detector refactor: a full MP3 simulation under the
// change-point policy must render a byte-identical report whether the
// detectors use the incremental suffix sums (production path) or recompute
// the window statistics naively at every check (reference path). Both runs
// share one set of characterised thresholds, so the only difference is the
// on-line sum maintenance.
func TestIncrementalDetectorGoldenRun(t *testing.T) {
	app := experiments.MP3App()
	clips, err := workload.MP3Sequence("ACEFBD")
	if err != nil {
		t.Fatal(err)
	}
	tr, err := workload.Generate(stats.NewRNG(1), clips, workload.GenerateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	first := tr.Changes[0]

	characterise := func(grid []float64) (*changepoint.Thresholds, changepoint.Config) {
		cfg := changepoint.DefaultConfig(grid)
		cfg.CharacterisationWindows = 800
		th, err := changepoint.Characterise(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return th, cfg
	}
	arrTh, arrCfg := characterise(app.ArrivalGrid)
	srvTh, srvCfg := characterise(app.ServiceGrid)

	report := func(naive bool) string {
		mkEst := func(cfg changepoint.Config, th *changepoint.Thresholds, initial float64) policy.Estimator {
			cfg.NaiveStats = naive
			det, err := changepoint.NewDetector(cfg, th, initial)
			if err != nil {
				t.Fatal(err)
			}
			return policy.NewChangePoint(det)
		}
		ctrl, err := policy.NewController(sa1100.Default(), app.Curve, app.TargetDelay,
			mkEst(arrCfg, arrTh, first.ArrivalRate),
			mkEst(srvCfg, srvTh, first.DecodeRateMax), false)
		if err != nil {
			t.Fatal(err)
		}
		ctrl.ResetRates(first.ArrivalRate, first.DecodeRateMax)
		res, err := sim.Run(sim.Config{
			Badge: device.SmartBadge(), Proc: sa1100.Default(),
			Trace: tr, Controller: ctrl, Kind: workload.MP3,
		})
		if err != nil {
			t.Fatal(err)
		}
		return FormatResult(res)
	}

	fast := report(false)
	slow := report(true)
	if fast != slow {
		t.Errorf("incremental and naive detector paths rendered different reports:\n--- incremental ---\n%s\n--- naive ---\n%s", fast, slow)
	}
}
